"""Algorithm 1: plans, eqn-3 updates, iteration control."""

import pytest

from repro.core import ADQuantizer, QuantizationSchedule, Trainer
from repro.density import SaturationDetector
from repro.nn import Adam, CrossEntropyLoss


def make_quantizer(model, schedule=None, saturation=None):
    trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss())
    return ADQuantizer(
        trainer,
        schedule or QuantizationSchedule(),
        saturation or SaturationDetector(window=2, tolerance=0.5),
    )


class TestSchedule:
    @pytest.mark.parametrize("kwargs", [
        {"initial_bits": 0},
        {"frozen_bits": 0},
        {"max_iterations": 0},
        {"min_epochs_per_iteration": 0},
        {"max_epochs_per_iteration": 1, "min_epochs_per_iteration": 2},
        {"min_bits": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QuantizationSchedule(**kwargs)

    def test_defaults_match_paper(self):
        sched = QuantizationSchedule()
        assert sched.initial_bits == 16
        assert sched.max_iterations == 4


class TestInitialPlan:
    def test_uniform_bits_with_frozen_ends(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        plan = quantizer.initial_plan()
        assert plan.bit_widths() == [16] * len(micro_vgg.layer_handles())
        assert plan[0].frozen and plan[-1].frozen
        assert not any(spec.frozen for spec in list(plan)[1:-1])

    def test_32_bit_start_keeps_frozen_at_16(self, micro_vgg):
        """Table II(c): 32-bit initial model still lists 16-bit ends."""
        quantizer = make_quantizer(
            micro_vgg, QuantizationSchedule(initial_bits=32, frozen_bits=16)
        )
        plan = quantizer.initial_plan()
        assert plan[0].bits == 16
        assert plan[1].bits == 32
        assert plan[-1].bits == 16


class TestApplyPlan:
    def test_installs_quantizers(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        for handle in micro_vgg.layer_handles():
            assert handle.current_bits() == 16
            if handle.is_conv:
                assert handle.unit.conv.weight_fake_quant is not None

    def test_plan_property_requires_apply(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        with pytest.raises(RuntimeError):
            _ = quantizer.plan

    def test_length_mismatch_rejected(self, micro_vgg, micro_resnet):
        quantizer = make_quantizer(micro_vgg)
        other = make_quantizer(micro_resnet).initial_plan()
        with pytest.raises(ValueError):
            quantizer.apply_plan(other)


class TestEqn3Update:
    def test_rounding(self, micro_vgg):
        """AD {0.9, 0.3, 0.5} on bits {16, 10, 8} -> {14, 3, 4} (paper)."""
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        names = micro_vgg.layer_handles().names()
        # Install specific bits on three hidden layers, then update.
        plan = quantizer.plan
        plan.by_name(names[1]).bits = 16
        plan.by_name(names[2]).bits = 10
        plan.by_name(names[3]).bits = 8
        densities = {name: 1.0 for name in names}
        densities[names[1]] = 0.9
        densities[names[2]] = 0.3
        densities[names[3]] = 0.5
        new_plan = quantizer.update_plan(densities)
        assert new_plan.by_name(names[1]).bits == 14
        assert new_plan.by_name(names[2]).bits == 3
        assert new_plan.by_name(names[3]).bits == 4

    def test_frozen_layers_untouched(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        densities = {name: 0.1 for name in micro_vgg.layer_handles().names()}
        new_plan = quantizer.update_plan(densities)
        assert new_plan[0].bits == 16
        assert new_plan[-1].bits == 16

    def test_min_bits_clamp(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        densities = {name: 0.0 for name in micro_vgg.layer_handles().names()}
        new_plan = quantizer.update_plan(densities)
        assert all(spec.bits >= 1 for spec in new_plan)

    def test_ad_one_is_fixed_point(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        densities = {name: 1.0 for name in micro_vgg.layer_handles().names()}
        new_plan = quantizer.update_plan(densities)
        assert new_plan.bit_widths() == quantizer.plan.bit_widths()

    def test_out_of_range_density_rejected(self, micro_vgg):
        quantizer = make_quantizer(micro_vgg)
        quantizer.apply_plan(quantizer.initial_plan())
        densities = {name: 1.0 for name in micro_vgg.layer_handles().names()}
        densities[micro_vgg.layer_handles().names()[1]] = 1.2
        with pytest.raises(ValueError):
            quantizer.update_plan(densities)


class TestRun:
    def test_records_and_monotone_bits(self, micro_vgg, tiny_loader):
        schedule = QuantizationSchedule(
            max_iterations=3, max_epochs_per_iteration=3, min_epochs_per_iteration=2
        )
        quantizer = make_quantizer(micro_vgg, schedule)
        records = quantizer.run(tiny_loader)
        assert 1 <= len(records) <= 3
        for record in records:
            assert record.epochs_trained <= 3
            assert 0.0 <= record.total_density <= 1.0
        # Bit-widths never increase between consecutive iterations.
        for earlier, later in zip(records, records[1:]):
            for b_early, b_late in zip(
                earlier.plan.bit_widths(), later.plan.bit_widths()
            ):
                assert b_late <= b_early

    def test_test_loader_accuracy_recorded(self, micro_vgg, tiny_loader):
        schedule = QuantizationSchedule(
            max_iterations=1, max_epochs_per_iteration=2, min_epochs_per_iteration=1
        )
        quantizer = make_quantizer(micro_vgg, schedule)
        records = quantizer.run(tiny_loader, test_loader=tiny_loader)
        assert records[0].test_accuracy is not None

    def test_final_epochs_extend_last_record(self, micro_vgg, tiny_loader):
        schedule = QuantizationSchedule(
            max_iterations=1,
            max_epochs_per_iteration=2,
            min_epochs_per_iteration=1,
            final_epochs=2,
        )
        quantizer = make_quantizer(micro_vgg, schedule)
        records = quantizer.run(tiny_loader)
        assert records[-1].epochs_trained == 4

    def test_saturation_breaks_early(self, micro_vgg, tiny_loader):
        # Huge tolerance -> saturated immediately at the window size.
        schedule = QuantizationSchedule(
            max_iterations=1, max_epochs_per_iteration=50, min_epochs_per_iteration=1
        )
        quantizer = make_quantizer(
            micro_vgg, schedule, SaturationDetector(window=2, tolerance=0.9)
        )
        records = quantizer.run(tiny_loader)
        assert records[0].epochs_trained == 2

    def test_skip_quant_follows_destination_for_resnet(
        self, micro_resnet, tiny_loader
    ):
        schedule = QuantizationSchedule(
            max_iterations=2, max_epochs_per_iteration=2, min_epochs_per_iteration=1
        )
        quantizer = make_quantizer(micro_resnet, schedule)
        quantizer.run(tiny_loader)
        for handle in micro_resnet.layer_handles():
            if handle.name.endswith("conv2"):
                block = handle.host
                assert block.skip_quant.bits == handle.current_bits()
