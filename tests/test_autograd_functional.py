"""Softmax / log-softmax / cross-entropy / dropout tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad_check
from repro.autograd.functional import cross_entropy, dropout, log_softmax, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        out = softmax(x)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = softmax(x).data
        assert np.isfinite(out).all()
        assert np.allclose(out.sum(), 1.0)

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert grad_check(lambda x_: softmax(x_), [x], atol=1e-6)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        assert grad_check(lambda x_: log_softmax(x_), [x], atol=1e-6)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert np.isclose(loss.item(), expected)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_uniform_logits_log_k(self):
        loss = cross_entropy(Tensor(np.zeros((4, 10))), np.zeros(4, dtype=int))
        assert np.isclose(loss.item(), np.log(10))

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([0, 1, 3])
        cross_entropy(logits, targets).backward()
        soft = softmax(Tensor(logits.data)).data
        expected = soft.copy()
        expected[np.arange(3), targets] -= 1
        assert np.allclose(logits.grad, expected / 3)

    def test_gradient_numerically(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        assert grad_check(lambda l: cross_entropy(l, targets), [logits], atol=1e-6)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_2d_targets_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 1), dtype=int))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_probability_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_gradient_masked_like_forward(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # Gradient nonzero exactly where output nonzero.
        assert np.array_equal(x.grad != 0, out.data != 0)
