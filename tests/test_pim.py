"""PIM platform: cells, accumulators, decoder, accelerator, energy.

The central invariant: the bit-sliced, bit-serial accelerator computes
*exact* integer matrix products at every supported precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import LayerProfile, profile_model, trace_geometry
from repro.models import vgg19
from repro.pim import (
    TABLE_IV_MAC_ENERGY_FJ,
    InputDecoder,
    PIMAccelerator,
    PIMArray,
    PIMEnergyModel,
    ShiftAccumulatorTree,
    analytical_overestimate_ratio,
    map_layer,
)


class TestPIMArray:
    def test_program_and_read(self):
        array = PIMArray(2, 4)
        bits = np.array([[1, 0, 1, 0], [0, 1, 0, 1]])
        array.program_bits(bits)
        assert np.array_equal(array.read_bits(), bits)

    def test_program_bits_validation(self):
        array = PIMArray(2, 2)
        with pytest.raises(ValueError):
            array.program_bits(np.ones((3, 2)))
        with pytest.raises(ValueError):
            array.program_bits(np.full((2, 2), 2))

    def test_program_weights_bit_slicing_msb_first(self):
        array = PIMArray(1, 4)
        array.program_weights(np.array([[0b10, 0b01]]), bits=2)
        assert np.array_equal(array.read_bits(), [[1, 0, 0, 1]])

    def test_program_weights_range_check(self):
        array = PIMArray(1, 4)
        with pytest.raises(ValueError):
            array.program_weights(np.array([[4]]), bits=2)

    def test_program_weights_capacity_check(self):
        array = PIMArray(1, 4)
        with pytest.raises(ValueError):
            array.program_weights(np.array([[1, 1, 1]]), bits=2)

    def test_column_popcounts(self):
        array = PIMArray(3, 2)
        array.program_bits(np.array([[1, 1], [1, 0], [0, 1]]))
        counts = array.column_popcounts(np.array([1, 1, 0]))
        assert np.array_equal(counts, [2, 1])

    def test_popcount_counts_cell_ops(self):
        array = PIMArray(3, 2)
        array.program_bits(np.zeros((3, 2), dtype=int))
        array.column_popcounts(np.array([1, 0, 1]))
        assert array.cell_ops == 2 * 2  # 2 active rows x 2 columns

    def test_drive_validation(self):
        array = PIMArray(2, 2)
        with pytest.raises(ValueError):
            array.column_popcounts(np.array([1, 2]))
        with pytest.raises(ValueError):
            array.column_popcounts(np.ones(3))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            PIMArray(0, 4)


class TestShiftAccumulator:
    def test_combine_reconstructs_weighted_sum(self):
        tree = ShiftAccumulatorTree(4)
        # One weight, columns MSB->LSB popcounts [1, 0, 1, 1] -> 8+2+1=11.
        out = tree.combine(np.array([1, 0, 1, 1]))
        assert np.array_equal(out, [11])

    def test_activation_bit_shift(self):
        tree = ShiftAccumulatorTree(2)
        out = tree.combine(np.array([1, 1]), activation_bit_position=3)
        assert np.array_equal(out, [3 << 3])

    def test_final_level_per_precision(self):
        assert ShiftAccumulatorTree(2).final_level == "acc4"
        assert ShiftAccumulatorTree(4).final_level == "acc8"
        assert ShiftAccumulatorTree(8).final_level == "acc16"
        assert ShiftAccumulatorTree(16).final_level == "acc16"

    def test_unsupported_precision(self):
        with pytest.raises(ValueError):
            ShiftAccumulatorTree(3)

    def test_stats_accumulate_by_level(self):
        tree = ShiftAccumulatorTree(2)
        tree.combine(np.array([1, 1, 0, 1]))  # 2 weights
        assert tree.stats.acc4_ops == 2
        assert tree.stats.acc8_ops == 0
        tree16 = ShiftAccumulatorTree(16)
        tree16.combine(np.ones(16, dtype=int))  # 1 weight
        assert tree16.stats.acc4_ops == 4
        assert tree16.stats.acc8_ops == 2
        assert tree16.stats.acc16_ops == 1

    def test_non_tiling_columns_raise(self):
        with pytest.raises(ValueError):
            ShiftAccumulatorTree(4).combine(np.ones(6, dtype=int))

    def test_reset_stats(self):
        tree = ShiftAccumulatorTree(2)
        tree.combine(np.array([1, 1]))
        tree.reset_stats()
        assert tree.stats.acc4_ops == 0


class TestInputDecoder:
    def test_bit_plane_extraction(self):
        decoder = InputDecoder(4)
        codes = np.array([0b1010, 0b0001])
        assert np.array_equal(decoder.bit_plane(codes, 0), [0, 1])
        assert np.array_equal(decoder.bit_plane(codes, 1), [1, 0])
        assert np.array_equal(decoder.bit_plane(codes, 3), [1, 0])

    def test_schedule_reconstructs_codes(self):
        decoder = InputDecoder(4)
        codes = np.array([5, 11, 0])
        reconstructed = np.zeros(3, dtype=int)
        for position, plane in decoder.schedule(codes):
            reconstructed += plane.astype(int) << position
        assert np.array_equal(reconstructed, codes)

    def test_fetch_counting(self):
        decoder = InputDecoder(2)
        list(decoder.schedule(np.array([1, 2, 3])))
        assert decoder.fetches == 3

    def test_out_of_range_codes(self):
        with pytest.raises(ValueError):
            list(InputDecoder(2).schedule(np.array([4])))
        with pytest.raises(ValueError):
            InputDecoder(2).bit_plane(np.array([-1]), 0)

    def test_bad_bit_position(self):
        with pytest.raises(ValueError):
            InputDecoder(2).bit_plane(np.array([1]), 5)


class TestMapper:
    def make_profile(self, **overrides):
        base = dict(
            name="conv", kind="conv", in_channels=16, out_channels=32,
            kernel=3, input_size=8, output_size=8, bits=4,
        )
        base.update(overrides)
        return LayerProfile(**base)

    def test_conv_mapping_dimensions(self):
        mapping = map_layer(self.make_profile(), rows=64, cols=64)
        assert mapping.patch_dim == 16 * 9
        assert mapping.positions == 64
        assert mapping.row_tiles == 3  # ceil(144/64)
        assert mapping.weights_per_col_tile == 16  # 64 cols / 4 bits
        assert mapping.col_tiles == 2
        assert mapping.total_tiles == 6

    def test_macs_match_analytical(self):
        profile = self.make_profile()
        mapping = map_layer(profile, 64, 64)
        assert mapping.macs == 8 * 8 * 16 * 9 * 32

    def test_snapping_applied(self):
        mapping = map_layer(self.make_profile(bits=5), 64, 64)
        assert mapping.hardware_bits == 8

    def test_linear_mapping(self):
        profile = self.make_profile(kind="linear", kernel=1, input_size=1, output_size=1)
        mapping = map_layer(profile, 64, 64)
        assert mapping.positions == 1
        assert mapping.patch_dim == 16

    def test_array_reads_scale_with_bits(self):
        low = map_layer(self.make_profile(bits=2), 64, 64)
        high = map_layer(self.make_profile(bits=16), 64, 128)
        assert high.array_reads > low.array_reads

    def test_too_narrow_array(self):
        with pytest.raises(ValueError):
            map_layer(self.make_profile(bits=16), rows=64, cols=8)


class TestAcceleratorCorrectness:
    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    def test_matmul_exact(self, rng, bits):
        K, O = 23, 9
        weights = rng.integers(0, 1 << bits, size=(K, O))
        acts = rng.integers(0, 1 << bits, size=(4, K))
        acc = PIMAccelerator(rows=16, cols=4 * bits)
        acc.load_matrix(weights, bits)
        assert np.array_equal(acc.matmul(acts), acts @ weights)

    def test_mixed_operand_precisions(self, rng):
        weights = rng.integers(0, 4, size=(10, 3))
        acts = rng.integers(0, 256, size=(2, 10))
        acc = PIMAccelerator(rows=8, cols=8)
        acc.load_matrix(weights, weight_bits=2, activation_bits=8)
        assert np.array_equal(acc.matmul(acts), acts @ weights)

    def test_snapped_weight_bits(self, rng):
        # 3-bit codes execute on 4-bit hardware.
        weights = rng.integers(0, 8, size=(6, 4))
        acts = rng.integers(0, 8, size=(3, 6))
        acc = PIMAccelerator(rows=8, cols=16)
        acc.load_matrix(weights, weight_bits=3, activation_bits=3)
        assert acc.weight_bits == 4
        assert np.array_equal(acc.matmul(acts), acts @ weights)

    def test_single_tile_no_tiling(self, rng):
        weights = rng.integers(0, 4, size=(4, 2))
        acc = PIMAccelerator(rows=4, cols=4)
        acc.load_matrix(weights, 2)
        assert len(acc._tiles) == 1
        assert len(acc._tiles[0]) == 1

    def test_row_and_col_tiling(self, rng):
        K, O = 50, 13
        weights = rng.integers(0, 16, size=(K, O))
        acts = rng.integers(0, 16, size=(2, K))
        acc = PIMAccelerator(rows=16, cols=16)  # forces 4 row x 4 col tiles
        acc.load_matrix(weights, 4)
        assert np.array_equal(acc.matmul(acts), acts @ weights)

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=10),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_exactness_random_shapes(self, k_dim, o_dim, bits, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 1 << bits, size=(k_dim, o_dim))
        acts = rng.integers(0, 1 << bits, size=(3, k_dim))
        acc = PIMAccelerator(rows=8, cols=8 * bits)
        acc.load_matrix(weights, bits)
        assert np.array_equal(acc.matmul(acts), acts @ weights)

    def test_activity_report(self, rng):
        weights = rng.integers(0, 4, size=(8, 4))
        acts = rng.integers(0, 4, size=(5, 8))
        acc = PIMAccelerator(rows=8, cols=8)
        acc.load_matrix(weights, 2)
        acc.matmul(acts)
        report = acc.activity()
        assert report.matvecs == 5
        assert report.cell_ops > 0
        assert report.accumulator.acc4_ops > 0
        assert report.total_accumulator_ops() == report.accumulator.acc4_ops
        assert report.decoder_fetches == 5 * 8

    def test_reset_stats(self, rng):
        weights = rng.integers(0, 4, size=(4, 2))
        acc = PIMAccelerator(rows=4, cols=4)
        acc.load_matrix(weights, 2)
        acc.matvec(np.array([1, 2, 3, 0]))
        acc.reset_stats()
        report = acc.activity()
        assert report.matvecs == 0
        assert report.cell_ops == 0

    def test_errors(self, rng):
        acc = PIMAccelerator(rows=4, cols=4)
        with pytest.raises(RuntimeError):
            acc.matvec(np.zeros(4))
        acc.load_matrix(rng.integers(0, 4, size=(4, 2)), 2)
        with pytest.raises(ValueError):
            acc.matvec(np.zeros(5))
        with pytest.raises(ValueError):
            acc.load_matrix(np.full((4, 2), 5), 2)


class TestPIMEnergy:
    def test_table_iv_values(self):
        assert TABLE_IV_MAC_ENERGY_FJ == {
            2: 2.942, 4: 16.968, 8: 66.714, 16: 276.676,
        }

    def test_mac_energy_snaps(self):
        model = PIMEnergyModel()
        assert model.mac_energy(3) == 16.968
        assert model.mac_energy(5) == 66.714
        assert model.mac_energy(22) == 276.676

    def test_superlinear_scaling(self):
        """PIM MAC energy grows faster than linearly with precision."""
        e = TABLE_IV_MAC_ENERGY_FJ
        assert e[4] / e[2] > 2.0
        assert e[8] / e[4] > 2.0
        assert e[16] / e[8] > 2.0

    def test_vgg19_full_precision_matches_table_v(self, rng):
        """Paper Table V: 110.154 uJ for 16-bit VGG19 on CIFAR-10."""
        model = vgg19(num_classes=10, width_multiplier=1.0, rng=rng)
        trace_geometry(model, (3, 32, 32))
        profiles = profile_model(model, default_bits=16)
        energy = PIMEnergyModel().network_energy(profiles)
        assert energy.total_uj == pytest.approx(110.154, rel=0.01)

    def test_energy_reduction_ratio(self):
        base = [LayerProfile("l", "conv", 4, 4, 3, 8, 8, 16)]
        quant = [LayerProfile("l", "conv", 4, 4, 3, 8, 8, 2)]
        reduction = PIMEnergyModel().energy_reduction(base, quant)
        assert reduction == pytest.approx(276.676 / 2.942)

    def test_operand_max_rule_uses_input_bits(self):
        wide_input = [LayerProfile("l", "conv", 4, 4, 3, 8, 8, 2, input_bits=16)]
        model = PIMEnergyModel()
        narrow = PIMEnergyModel(precision_rule="weight-only")
        assert model.network_energy(wide_input).total_uj > narrow.network_energy(
            wide_input
        ).total_uj

    def test_invalid_rule(self):
        with pytest.raises(ValueError):
            PIMEnergyModel(precision_rule="bogus")

    def test_invalid_energy_table(self):
        with pytest.raises(ValueError):
            PIMEnergyModel({2: -1.0})

    def test_empty_profiles(self):
        with pytest.raises(ValueError):
            PIMEnergyModel().network_energy([])

    def test_analytical_overestimates_pim(self):
        """§V-B: analytical efficiency > PIM efficiency for mixed models.

        The effect is a network-level one: the paper's models keep the
        first and last layers at 16 bits, and on the bit-serial PIM
        platform their activations force 16-cycle operation on their
        neighbours (operand-max rule) while precisions snap up to
        {2,4,8,16} — whereas the analytical model credits idealized
        fractional-bit savings (e.g. 3/32 multiply cost) on every layer.
        """
        def network(bits_mid, channels_mid):
            return [
                LayerProfile("first", "conv", 3, 16, 3, 16, 16, 16, input_bits=16),
                LayerProfile("mid", "conv", 16, channels_mid, 3, 16, 16,
                             bits_mid, input_bits=16),
                LayerProfile("last", "conv", channels_mid, 16, 3, 16, 16, 16,
                             input_bits=bits_mid),
            ]

        base = network(16, 64)
        pruned_quant = network(3, 20)  # eqn-3 bits + eqn-5 pruning
        ratio = analytical_overestimate_ratio(base, pruned_quant)
        assert ratio > 1.0
