"""Extension features: XNOR 1-bit datapath and report export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.export import (
    load_report_json,
    report_to_dict,
    save_report_csv,
    save_report_json,
)
from repro.core.runner import ExperimentReport, TableRow
from repro.pim.xnor import XNORAccelerator, binarize, xnor_gemm


class TestBinarize:
    def test_signs(self):
        assert np.array_equal(binarize(np.array([-0.5, 0.0, 2.0])), [-1, 1, 1])

    def test_output_is_pm_one(self, rng):
        out = binarize(rng.normal(size=50))
        assert set(np.unique(out)) <= {-1, 1}


class TestXNORAccelerator:
    def test_matches_integer_matmul(self, rng):
        weights = binarize(rng.normal(size=(37, 11)))
        acts = binarize(rng.normal(size=(6, 37)))
        assert np.array_equal(xnor_gemm(acts, weights), acts @ weights)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_exact_pm1_gemm(self, k_dim, o_dim, seed):
        rng = np.random.default_rng(seed)
        weights = binarize(rng.normal(size=(k_dim, o_dim)))
        acts = binarize(rng.normal(size=(3, k_dim)))
        assert np.array_equal(xnor_gemm(acts, weights), acts @ weights)

    def test_stats_counted(self, rng):
        engine = XNORAccelerator()
        engine.load_weights(binarize(rng.normal(size=(10, 4))))
        engine.matvec(binarize(rng.normal(size=10)))
        assert engine.stats.xnor_ops == 40
        assert engine.stats.popcounts == 4

    def test_rejects_non_sign_inputs(self, rng):
        engine = XNORAccelerator()
        with pytest.raises(ValueError):
            engine.load_weights(rng.normal(size=(4, 2)))

    def test_requires_load(self):
        with pytest.raises(RuntimeError):
            XNORAccelerator().matvec(np.ones(4, dtype=int))

    def test_shape_check(self, rng):
        engine = XNORAccelerator()
        engine.load_weights(binarize(rng.normal(size=(10, 4))))
        with pytest.raises(ValueError):
            engine.matvec(np.ones(5, dtype=int))

    def test_as_pim_array(self, rng):
        engine = XNORAccelerator()
        weights = binarize(rng.normal(size=(6, 3)))
        engine.load_weights(weights)
        array = engine.as_pim_array()
        assert np.array_equal(array.read_bits(), (weights + 1) // 2)


def make_report():
    report = ExperimentReport("VGG19", "cifar10-syn", ["conv1", "conv2", "fc"])
    report.rows.append(
        TableRow(1, [16, 16, 16], 0.5, 0.47, 1.0, 8, 1.0)
    )
    report.rows.append(
        TableRow(2, [16, 8, 16], 0.55, 0.46, 2.0, 5, 0.52,
                 channel_counts=[32], label="")
    )
    return report


class TestReportExport:
    def test_dict_roundtrip_fields(self):
        payload = report_to_dict(make_report())
        assert payload["architecture"] == "VGG19"
        assert len(payload["rows"]) == 2
        assert payload["rows"][1]["bit_widths"] == [16, 8, 16]

    def test_json_roundtrip(self, tmp_path):
        report = make_report()
        path = tmp_path / "report.json"
        save_report_json(report, path)
        loaded = load_report_json(path)
        assert loaded.architecture == report.architecture
        assert loaded.rows[1].bit_widths == report.rows[1].bit_widths
        assert loaded.rows[1].channel_counts == report.rows[1].channel_counts
        assert loaded.rows[0].train_complexity == 1.0

    def test_csv_contents(self, tmp_path):
        path = tmp_path / "report.csv"
        save_report_csv(make_report(), path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3  # header + 2 rows
        assert "bit_widths" in lines[0]
        assert "[16, 8, 16]" in lines[2]

    def test_export_from_live_runner(self, micro_vgg, tiny_dataset, rng, tmp_path):
        from repro.core import ExperimentRunner, QuantizationSchedule
        from repro.data import DataLoader
        from repro.density import SaturationDetector
        from repro.nn import Adam, CrossEntropyLoss

        runner = ExperimentRunner(
            micro_vgg,
            DataLoader(tiny_dataset, batch_size=8, shuffle=True, rng=rng),
            DataLoader(tiny_dataset, batch_size=16),
            Adam(micro_vgg.parameters(), lr=3e-3),
            CrossEntropyLoss(),
            input_shape=(3, 8, 8),
            schedule=QuantizationSchedule(
                max_iterations=1, max_epochs_per_iteration=2,
                min_epochs_per_iteration=1,
            ),
            saturation=SaturationDetector(window=2, tolerance=0.9),
        )
        report = runner.run()
        save_report_json(report, tmp_path / "live.json")
        loaded = load_report_json(tmp_path / "live.json")
        assert loaded.rows[0].bit_widths == report.rows[0].bit_widths
