"""Cross-module integration tests.

These lock down the end-to-end behaviours the paper's experiments rely
on: quantization-aware training converging at low precision, AD-driven
re-quantization preserving accuracy, fake-quant/integer-PIM consistency,
and the interplay of pruning with the energy models.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ADQuantizer, QuantizationSchedule, Trainer
from repro.data import ArrayDataset, DataLoader, make_classification_images
from repro.density import SaturationDetector
from repro.energy import profile_model, trace_geometry
from repro.models import vgg11
from repro.nn import Adam, CrossEntropyLoss, Linear
from repro.pim import PIMAccelerator, PIMEnergyModel
from repro.quant import UniformQuantizer


@pytest.fixture
def learnable_workload(rng):
    images, labels = make_classification_images(
        4, 24, image_size=8, noise=0.4, seed=11
    )
    data = ArrayDataset(images, labels)
    train = DataLoader(data, batch_size=16, shuffle=True, rng=rng)
    test = DataLoader(data, batch_size=32)
    return train, test


class TestQuantizedTrainingConverges:
    def test_low_precision_model_learns(self, learnable_workload, rng):
        train, test = learnable_workload
        model = vgg11(num_classes=4, width_multiplier=0.125, image_size=8, rng=rng)
        for handle in model.layer_handles():
            frozen = handle.role in ("first", "last")
            handle.apply_bits(16 if frozen else 4)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss())
        trainer.fit(train, epochs=20)
        assert trainer.evaluate(test) >= 0.7

    def test_quantized_near_float_accuracy(self, learnable_workload, rng):
        """The paper's central accuracy claim, at micro scale."""
        train, test = learnable_workload
        float_model = vgg11(num_classes=4, width_multiplier=0.125, image_size=8,
                            rng=np.random.default_rng(0))
        quant_model = vgg11(num_classes=4, width_multiplier=0.125, image_size=8,
                            rng=np.random.default_rng(0))
        for handle in quant_model.layer_handles():
            frozen = handle.role in ("first", "last")
            handle.apply_bits(16 if frozen else 5)
        for model in (float_model, quant_model):
            trainer = Trainer(
                model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss()
            )
            trainer.fit(train, epochs=15)
            model._final_acc = trainer.evaluate(test)
        assert quant_model._final_acc >= float_model._final_acc - 0.15


class TestAlgorithmOneEndToEnd:
    def test_densities_drive_bits_and_energy(self, learnable_workload, rng):
        train, test = learnable_workload
        model = vgg11(num_classes=4, width_multiplier=0.125, image_size=8, rng=rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss())
        quantizer = ADQuantizer(
            trainer,
            QuantizationSchedule(
                max_iterations=3, max_epochs_per_iteration=5,
                min_epochs_per_iteration=3,
            ),
            SaturationDetector(window=3, tolerance=0.2),
        )
        records = quantizer.run(train, test)
        assert len(records) >= 2
        # Eqn 3 holds between consecutive records.
        first, second = records[0], records[1]
        for spec_new, spec_old in zip(second.plan, first.plan):
            if spec_old.frozen:
                assert spec_new.bits == spec_old.bits
            else:
                expected = max(1, round(spec_old.bits * first.densities[spec_old.name]))
                assert spec_new.bits == expected
        # Energy of the final plan beats the initial plan.
        trace_geometry(model, (3, 8, 8))
        pim = PIMEnergyModel()
        base = pim.network_energy(profile_model(model, plan=records[0].plan)).total_uj
        final = pim.network_energy(profile_model(model, plan=records[-1].plan)).total_uj
        assert final < base


class TestFakeQuantPIMConsistency:
    def test_integer_pim_matmul_equals_fake_quant_linear(self, rng):
        """Affine consistency between the training-side fake quantization
        and the PIM integer datapath.

        fake_quant(x) = codes * scale + xmin, so the float product of
        fake-quantized operands must equal the PIM integer matmul after
        affine correction.
        """
        bits = 4
        x = rng.normal(size=(5, 12))
        layer = Linear(12, 7, bias=False, rng=rng)
        w = layer.weight.data.T  # (12, 7)

        xq = UniformQuantizer(bits, dynamic=False).calibrate(x)
        wq = UniformQuantizer(bits, dynamic=False).calibrate(w)
        x_codes = xq.encode(x)
        w_codes = wq.encode(w)
        x_scale = (xq.x_max - xq.x_min) / (2**bits - 1)
        w_scale = (wq.x_max - wq.x_min) / (2**bits - 1)

        acc = PIMAccelerator(rows=16, cols=32)
        acc.load_matrix(w_codes, bits)
        int_result = acc.matmul(x_codes)

        # Affine expansion of (cx*sx + mx) @ (cw*sw + mw).
        k = x.shape[1]
        expected = (
            int_result * x_scale * w_scale
            + (x_codes.sum(axis=1, keepdims=True) * x_scale) * wq.x_min
            + xq.x_min * (w_codes.sum(axis=0, keepdims=True) * w_scale)
            + k * xq.x_min * wq.x_min
        )
        fq_product = xq.fake_quant(x) @ wq.fake_quant(w)
        assert np.allclose(expected, fq_product, atol=1e-9)


class TestPrunedEnergyAccounting:
    def test_pruning_halves_mac_energy_roughly(self, rng, tiny_loader):
        model = vgg11(num_classes=4, width_multiplier=0.25, image_size=8, rng=rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
        trainer.train_epoch(tiny_loader)
        trace_geometry(model, (3, 8, 8))
        pim = PIMEnergyModel()
        base = pim.network_energy(profile_model(model, default_bits=16)).total_uj

        from repro.core import ADPruner

        pruner = ADPruner(model.layer_handles())
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        pruned = pim.network_energy(profile_model(model, default_bits=16)).total_uj
        # Hidden-layer MACs scale ~quadratically with the kept fraction;
        # boundary layers are unpruned, so expect somewhere in (0.25, 0.8).
        assert 0.15 * base < pruned < 0.8 * base

    def test_pruned_model_still_trains(self, rng, tiny_loader):
        model = vgg11(num_classes=4, width_multiplier=0.25, image_size=8, rng=rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), CrossEntropyLoss())
        trainer.train_epoch(tiny_loader)

        from repro.core import ADPruner

        pruner = ADPruner(model.layer_handles())
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        before = trainer.train_epoch(tiny_loader).loss
        for _ in range(6):
            after = trainer.train_epoch(tiny_loader).loss
        assert after < before

    def test_masked_channels_receive_no_gradient(self, rng, tiny_loader):
        model = vgg11(num_classes=4, width_multiplier=0.25, image_size=8, rng=rng)
        handle = model.layer_handles().by_name("conv3")
        mask = np.ones(handle.out_channels)
        mask[0] = 0.0
        handle.set_channel_mask(mask)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
        images, labels = next(iter(tiny_loader))
        trainer.optimizer.zero_grad()
        loss = trainer.loss_fn(model(Tensor(images)), labels)
        loss.backward()
        grad = handle.unit.conv.weight.grad
        assert grad is not None
        assert np.allclose(grad[0], 0.0)
        assert not np.allclose(grad[1], 0.0)


class TestCheckpointResume:
    def test_quantized_model_roundtrip(self, tmp_path, rng, tiny_loader):
        from repro.utils import load_checkpoint, save_checkpoint

        model = vgg11(num_classes=4, width_multiplier=0.125, image_size=8, rng=rng)
        for handle in model.layer_handles():
            handle.apply_bits(8)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
        trainer.fit(tiny_loader, epochs=2)
        save_checkpoint(tmp_path / "m.npz", model.state_dict())

        clone = vgg11(num_classes=4, width_multiplier=0.125, image_size=8,
                      rng=np.random.default_rng(99))
        for handle in clone.layer_handles():
            handle.apply_bits(8)
        state, _ = load_checkpoint(tmp_path / "m.npz")
        clone.load_state_dict(state)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        model.eval()
        clone.eval()
        assert np.allclose(model(x).data, clone(x).data)
