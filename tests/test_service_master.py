"""The repro master, live and in-process: a real asyncio server on a
temp unix socket, driven through real :class:`MasterClient` sockets,
with a fast injected ``execute`` so whole queue lifecycles run in
milliseconds."""

import asyncio
import socket as socket_module
import threading
import time

import pytest

from repro.api import experiments
from repro.orchestration import SweepConfig
from repro.service import protocol
from repro.service.client import MasterClient, MasterError
from repro.service.master import Master, detect_config_kind
from repro.service.queue import JobQueue

SLOW_SEED = 100          # seeds >= this sleep, for preemption windows
SLOW_SECONDS = 0.25


def fake_execute(task):
    seed = task["config"]["model"]["seed"]
    if seed >= SLOW_SEED:
        time.sleep(SLOW_SECONDS)
    return {
        "index": task["index"],
        "status": "ok",
        "payload": {"report": {"fake": True, "seed": seed}, "artifacts": {}},
        "duration": 0.0,
    }


def sweep_spec(name="fast", seeds=(0, 1)):
    sweep = SweepConfig(
        name=name,
        base=experiments.get_config("vgg11-micro-smoke"),
        seeds=tuple(seeds),
    )
    return {"config": sweep.to_dict(), "kind": "sweep"}


class MasterHarness:
    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self.socket_path = tmp_path / "master.sock"
        self.state_path = tmp_path / "state.json"
        self.cache_dir = tmp_path / "cache"
        self.thread = None
        self.master = None

    def start(self, jobs=1):
        self.master = Master(
            socket_path=self.socket_path, jobs=jobs,
            cache_dir=self.cache_dir, state_path=self.state_path,
            execute=fake_execute,
        )
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.master.serve()), daemon=True
        )
        self.thread.start()
        deadline = time.time() + 10
        while not self.socket_path.exists():
            assert time.time() < deadline, "master never bound its socket"
            time.sleep(0.01)
        return self.master

    def client(self):
        return MasterClient(self.socket_path, timeout=30)

    def stop(self):
        if self.thread is None or not self.thread.is_alive():
            return
        try:
            with self.client() as client:
                client.shutdown()
        except (MasterError, OSError):
            pass
        self.thread.join(timeout=15)
        assert not self.thread.is_alive(), "master did not shut down"

    def restart(self, jobs=1):
        self.stop()
        return self.start(jobs=jobs)


@pytest.fixture
def harness(tmp_path):
    h = MasterHarness(tmp_path)
    h.start()
    yield h
    h.stop()


def wait_for_state(client, job, states, timeout=15):
    deadline = time.time() + timeout
    while time.time() < deadline:
        (status,) = client.status(job=job)["jobs"]
        if status["state"] in states:
            return status
        time.sleep(0.02)
    raise AssertionError(
        f"job {job} never reached {states}; last: {status}"
    )


class TestJobLifecycle:
    def test_submit_watch_completes_with_streamed_events(self, harness):
        with harness.client() as client:
            assert client.server["protocol"] == protocol.PROTOCOL_VERSION
            job = client.submit(**sweep_spec())["job"]
            events = []
            final = client.watch(job, on_event=events.append)
        assert final["state"] == "done"
        assert final["summary"]["stats"]["total"] == 2
        names = [e["event"] for e in events]
        assert names.count("point") == 2
        assert "schedule" in names and "done" in names

    def test_resubmission_is_pure_cache_hits(self, harness):
        with harness.client() as client:
            first = client.watch(client.submit(**sweep_spec())["job"])
            assert first["summary"]["stats"]["cache_hits"] == 0
            second = client.watch(client.submit(**sweep_spec())["job"])
        stats = second["summary"]["stats"]
        assert stats["executed"] == 0
        assert stats["cached"] == stats["total"] == 2
        assert stats["cache_hits"] == 2

    def test_submit_by_preset_resolves_server_side(self, harness):
        with harness.client() as client:
            result = client.submit(preset="table2-vgg19-seeds")
            assert result["kind"] == "sweep"
            client.cancel(result["job"])

    def test_unknown_preset_is_typed_bad_params(self, harness):
        with harness.client() as client:
            with pytest.raises(MasterError) as err:
                client.submit(preset="no-such-preset")
            assert err.value.code == protocol.E_BAD_PARAMS

    def test_cancel_queued_job(self, harness):
        with harness.client() as client:
            slow = client.submit(**sweep_spec(
                "slow", seeds=(SLOW_SEED, SLOW_SEED + 1)))["job"]
            queued = client.submit(**sweep_spec("later", seeds=(7,)))["job"]
            result = client.cancel(queued)
            assert result["state"] == "cancelled"
            final = client.watch(queued)
            assert final["state"] == "cancelled"
            client.watch(slow)

    def test_cancel_finished_job_is_invalid_state(self, harness):
        with harness.client() as client:
            job = client.submit(**sweep_spec())["job"]
            client.watch(job)
            with pytest.raises(MasterError) as err:
                client.cancel(job)
            assert err.value.code == protocol.E_INVALID_STATE

    def test_unknown_job_is_typed(self, harness):
        with harness.client() as client:
            with pytest.raises(MasterError) as err:
                client.status(job=999)
            assert err.value.code == protocol.E_UNKNOWN_JOB

    def test_watch_of_finished_job_replays_to_completion(self, harness):
        with harness.client() as client:
            job = client.submit(**sweep_spec())["job"]
            client.watch(job)
        # A second client arriving after the fact still sees the ending.
        with harness.client() as client:
            events = []
            final = client.watch(job, on_event=events.append)
        assert final["state"] == "done"
        assert [e["event"] for e in events].count("point") == 2


class TestPriorityAndPreemption:
    def test_higher_priority_preempts_between_rounds(self, harness):
        with harness.client() as client:
            bulk = client.submit(**sweep_spec(
                "bulk", seeds=tuple(range(SLOW_SEED, SLOW_SEED + 6))
            ))["job"]
            wait_for_state(client, bulk, ("running",))
            urgent = client.submit(**sweep_spec("urgent", seeds=(1,)),
                                   priority=10)["job"]
            urgent_final = client.watch(urgent)
            assert urgent_final["state"] == "done"
            (bulk_status,) = client.status(job=bulk)["jobs"]
            # The urgent job finished while the bulk sweep still runs:
            # that is the preemption (pause happened between rounds).
            assert bulk_status["state"] in ("running", "paused", "queued")
            bulk_final = client.watch(bulk)
        assert bulk_final["state"] == "done"
        assert bulk_final["summary"]["stats"]["total"] == 6
        assert urgent_final["finished_at"] < bulk_final["finished_at"]

    def test_fifo_within_equal_priority(self, harness):
        with harness.client() as client:
            first = client.submit(**sweep_spec("a", seeds=(SLOW_SEED,)))["job"]
            second = client.submit(**sweep_spec("b", seeds=(31,)))["job"]
            a = client.watch(first)
            b = client.watch(second)
        assert a["finished_at"] <= b["finished_at"]


class TestClientRobustness:
    def test_killing_a_watcher_does_not_kill_the_job(self, harness):
        with harness.client() as client:
            job = client.submit(**sweep_spec(
                "watched", seeds=(SLOW_SEED + 2, SLOW_SEED + 3)))["job"]
        watcher = harness.client()
        watcher.call("watch", {"job": job})
        watcher._sock.close()  # die mid-stream, no goodbye
        with harness.client() as client:
            final = client.watch(job)
        assert final["state"] == "done"
        assert final["summary"]["stats"]["total"] == 2

    def test_two_clients_interleave_without_crosstalk(self, harness):
        results = {}
        errors = []

        def run_one(tag, seeds):
            try:
                with harness.client() as client:
                    job = client.submit(**sweep_spec(tag, seeds=seeds))["job"]
                    results[tag] = (job, client.watch(job))
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=run_one,
                             args=(f"c{i}", (SLOW_SEED + 10 + i,)))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 2
        jobs = {job for job, _ in results.values()}
        assert len(jobs) == 2
        for _, final in results.values():
            assert final["state"] == "done"

    def test_garbage_line_gets_typed_error_and_connection_survives(
            self, harness):
        raw = socket_module.socket(socket_module.AF_UNIX,
                                   socket_module.SOCK_STREAM)
        raw.settimeout(10)
        raw.connect(str(harness.socket_path))
        reader = raw.makefile("rb")
        protocol.check_hello(protocol.decode_line(reader.readline()))
        raw.sendall(b"this is not json\n")
        error = protocol.decode_line(reader.readline())
        assert error["error"]["code"] == protocol.E_PARSE
        assert error["id"] is None
        # Framing is intact: a real request on the same connection works.
        raw.sendall(protocol.encode(protocol.request(5, "status")))
        response = protocol.decode_line(reader.readline())
        assert response["id"] == 5 and "result" in response
        raw.close()

    def test_unknown_method_is_typed(self, harness):
        with harness.client() as client:
            with pytest.raises(MasterError) as err:
                client.call("frobnicate")
            assert err.value.code == protocol.E_UNKNOWN_METHOD


class TestRestart:
    def test_restarted_master_reoffers_unfinished_jobs(self, tmp_path):
        harness = MasterHarness(tmp_path)
        harness.start()
        try:
            with harness.client() as client:
                job = client.submit(**sweep_spec(
                    "long", seeds=(SLOW_SEED, SLOW_SEED + 1, SLOW_SEED + 2)
                ))["job"]
                # Let the first point finish (and land in the cache)
                # before pulling the plug mid-job.
                with harness.client() as watcher:
                    watcher.call("watch", {"job": job})
                    while True:
                        message = watcher._read_message()
                        if message.get("event") == "point":
                            break
                client.shutdown()
            harness.thread.join(timeout=15)
            assert not harness.thread.is_alive()
            # The dead master left the job mid-flight in its state file.
            saved = JobQueue.load(harness.state_path).get(job)
            assert saved.state == "queued"

            harness.start()
            with harness.client() as client:
                final = client.watch(job)
            assert final["state"] == "done"
            stats = final["summary"]["stats"]
            assert stats["total"] == 3
            # Points finished before the shutdown replay from the cache.
            assert stats["cached"] >= 1
        finally:
            harness.stop()


def search_spec(speculate=None, seed=0, max_trials=2):
    from repro.orchestration.search import SearchConfig

    search = SearchConfig(
        name="spec-search",
        base=experiments.get_config("vgg11-micro-smoke").evolve(
            model={"seed": seed}),
        strategy="ad-bits",
        max_trials=max_trials,
    )
    spec = {"config": search.to_dict(), "kind": "search"}
    if speculate is not None:
        spec["speculate"] = speculate
    return spec


class TestSpeculativeSubmission:
    """``submit --speculate`` flows through the service end to end."""

    def test_search_with_speculate_completes(self, harness):
        # The harness execute returns row-less payloads, so the search
        # ends after its reference trial — but not before the wrapper
        # bet on the 1-bit step and cancelled it at DONE.  The whole
        # speculative path (quarantine, cancel, accounting) runs inside
        # the live master, and the stats surface in the summary.
        with harness.client() as client:
            job = client.submit(**search_spec(speculate=2))["job"]
            final = client.watch(job)
        assert final["state"] == "done"
        stats = final["summary"]["stats"]
        assert stats["speculated"] == 1
        assert stats["confirmed"] == 0
        assert stats["cancelled"] == 1
        assert stats["wasted_trials"] == 0  # serial: bets die queued

    def test_unspeculated_search_carries_no_speculation_stats(
            self, harness):
        with harness.client() as client:
            final = client.watch(
                client.submit(**search_spec())["job"])
        assert "speculated" not in final["summary"]["stats"]

    def test_speculate_rejected_for_sweep_jobs(self, harness):
        with harness.client() as client:
            spec = sweep_spec()
            spec["speculate"] = 2
            with pytest.raises(MasterError) as err:
                client.submit(**spec)
            assert err.value.code == protocol.E_BAD_PARAMS

    def test_speculate_must_be_an_integer(self, harness):
        with harness.client() as client:
            spec = search_spec()
            spec["speculate"] = "three"
            with pytest.raises(MasterError) as err:
                client.call("submit", spec)
            assert err.value.code == protocol.E_BAD_PARAMS

    def test_preemption_cancels_bets_and_search_still_finishes(
            self, harness):
        # A slow speculative search gets preempted by an urgent job:
        # the master must cancel the search's in-flight bets before
        # switching (they would otherwise hold the shared executor),
        # then resume and finish the search correctly.
        with harness.client() as client:
            slow = client.submit(**search_spec(
                speculate=2, seed=SLOW_SEED))["job"]
            wait_for_state(client, slow, ("running",))
            urgent = client.submit(**sweep_spec("urgent", seeds=(1,)),
                                   priority=10)["job"]
            assert client.watch(urgent)["state"] == "done"
            final = client.watch(slow)
        assert final["state"] == "done"
        stats = final["summary"]["stats"]
        # Every bet settled one way or the other — none leaked.
        assert stats["speculated"] == \
            stats["confirmed"] + stats["cancelled"]


class TestResolveSpecSpeculation:
    def test_speculate_applies_to_search_configs(self):
        from repro.service.master import resolve_spec

        kind, _, payload = resolve_spec(search_spec(speculate=3))
        assert kind == "search"
        assert payload.speculation == 3

    def test_speculate_refused_for_run_kind(self):
        from repro.service.master import resolve_spec

        with pytest.raises(ValueError, match="search jobs"):
            resolve_spec({
                "config": experiments.get_config(
                    "vgg11-micro-smoke").to_dict(),
                "kind": "run",
                "speculate": 2,
            })


class TestKindDetection:
    def test_detects_search_sweep_and_run(self):
        assert detect_config_kind({"strategy": "ad-bits"}) == "search"
        assert detect_config_kind({"axes": [], "base": {}}) == "sweep"
        assert detect_config_kind(
            experiments.get_config("vgg11-micro-smoke").to_dict()
        ) == "run"

    def test_undetectable_config_rejected(self):
        with pytest.raises(ValueError):
            detect_config_kind({"mystery": 1})
