"""Optimizer and scheduler math."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineAnnealingLR, StepLR
from repro.nn.module import Parameter


def make_param(values):
    param = Parameter(np.array(values, dtype=np.float64))
    param.grad = np.ones_like(param.data)
    return param


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.9, 1.9])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v = 1 -> p = -1
        p.grad = np.ones(1)
        opt.step()  # v = 1.9 -> p = -2.9
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay_adds_l2_grad(self):
        p = make_param([2.0])
        p.grad = np.zeros(1)
        SGD([p], lr=0.5, weight_decay=0.1).step()
        assert np.allclose(p.data, [2.0 - 0.5 * 0.2])

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0, 1.0])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)

    def test_zero_grad(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, |step 1| == lr for any constant gradient.
        p = make_param([0.0])
        Adam([p], lr=0.01).step()
        assert np.allclose(p.data, [-0.01], atol=1e-8)

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        p = Parameter(rng.normal(size=5))
        reference = p.data.copy()
        m = np.zeros(5)
        v = np.zeros(5)
        opt = Adam([p], lr=0.004, betas=(0.9, 0.999), eps=1e-8)
        for t in range(1, 6):
            grad = rng.normal(size=5)
            p.grad = grad.copy()
            opt.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad * grad
            m_hat = m / (1 - 0.9**t)
            v_hat = v / (1 - 0.999**t)
            reference -= 0.004 * m_hat / (np.sqrt(v_hat) + 1e-8)
            assert np.allclose(p.data, reference, atol=1e-12)

    def test_weight_decay(self):
        p = make_param([1.0])
        p.grad = np.zeros(1)
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 1.0

    def test_adaptive_scaling_shrinks_large_grad_dims(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(50):
            p.grad = np.array([1.0, 100.0])
            opt.step()
        # Adam normalizes per-dimension: both coordinates move similarly.
        assert abs(p.data[0] - p.data[1]) < abs(p.data[0]) * 0.2


class TestSchedulers:
    def test_step_lr_decays(self):
        p = make_param([1.0])
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_step_lr_invalid_step(self):
        with pytest.raises(ValueError):
            StepLR(SGD([make_param([1.0])], lr=1.0), step_size=0)

    def test_cosine_endpoints(self):
        opt = SGD([make_param([1.0])], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-12)

    def test_cosine_midpoint_half(self):
        opt = SGD([make_param([1.0])], lr=2.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert np.isclose(opt.lr, 1.0)

    def test_cosine_clamps_past_tmax(self):
        opt = SGD([make_param([1.0])], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=3, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.1)
