"""Unit tests for the autograd Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad
from repro.autograd.tensor import unbroadcast


class TestConstruction:
    def test_data_converted_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_shares_data_drops_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert np.allclose(b.data, [2.0, 4.0])


class TestArithmetic:
    def test_add_values_and_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = a + b
        out.backward(np.array([1.0, 1.0]))
        assert np.allclose(out.data, [4.0, 6.0])
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_radd_with_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        out = 2.0 + a
        out.backward(np.array([1.0]))
        assert np.allclose(out.data, [3.0])
        assert np.allclose(a.grad, [1.0])

    def test_mul_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward(np.array([1.0]))
        assert np.allclose(a.grad, [5.0])
        assert np.allclose(b.grad, [2.0])

    def test_sub_and_neg(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward(np.array([1.0]))
        assert np.allclose(a.grad, [1.0])
        assert np.allclose(b.grad, [-1.0])

    def test_rsub(self):
        a = Tensor([1.0], requires_grad=True)
        out = 5.0 - a
        out.backward(np.array([1.0]))
        assert np.allclose(out.data, [4.0])
        assert np.allclose(a.grad, [-1.0])

    def test_div_grads(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward(np.array([1.0]))
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_rtruediv(self):
        a = Tensor([4.0], requires_grad=True)
        out = 8.0 / a
        out.backward(np.array([1.0]))
        assert np.allclose(out.data, [2.0])
        assert np.allclose(a.grad, [-0.5])

    def test_pow_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward(np.array([1.0]))
        assert np.allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        out = a @ b
        out.backward(np.array([[1.0]]))
        assert np.allclose(out.data, [[11.0]])
        assert np.allclose(a.grad, [[3.0, 4.0]])
        assert np.allclose(b.grad, [[1.0], [2.0]])

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (4, 2, 5)
        out.sum().backward()
        assert a.grad.shape == (4, 2, 3)
        assert b.grad.shape == (4, 3, 5)


class TestBroadcasting:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [4.0, 4.0, 4.0])

    def test_mul_broadcast_scalar_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(3.0, requires_grad=True)
        (x * s).sum().backward()
        assert np.allclose(s.grad, 4.0)

    def test_unbroadcast_prepended_axes(self):
        grad = np.ones((5, 3))
        assert unbroadcast(grad, (3,)).shape == (3,)
        assert np.allclose(unbroadcast(grad, (3,)), 5.0)

    def test_unbroadcast_singleton_axes(self):
        grad = np.ones((4, 3))
        out = unbroadcast(grad, (4, 1))
        assert out.shape == (4, 1)
        assert np.allclose(out, 3.0)

    def test_unbroadcast_noop(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad


class TestBackwardSemantics:
    def test_backward_requires_scalar_without_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_shape_mismatch_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.ones(3))

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        (a * 2).backward(np.array([1.0]))
        assert np.allclose(a.grad, [4.0])

    def test_diamond_graph_accumulation(self):
        # f = a*a + a*a should give grad 4a.
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        c = a * a
        (b + c).backward(np.array([1.0]))
        assert np.allclose(a.grad, [12.0])

    def test_reused_node_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        (b + b).backward(np.array([1.0]))
        assert np.allclose(a.grad, [6.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.backward(np.array([1.0]))
        assert np.allclose(a.grad, [1.0])

    def test_intermediate_grads_freed(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = b * 3
        c.backward(np.array([1.0]))
        assert b.grad is None  # non-leaf grad released
        assert np.allclose(a.grad, [6.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nesting(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()


class TestElementwise:
    def test_relu_values_and_mask_grad(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        out = a.relu()
        out.backward(np.ones(3))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])
        assert np.allclose(a.grad, [0.0, 0.0, 1.0])

    def test_exp_log_roundtrip(self):
        a = Tensor([0.5, 1.5])
        assert np.allclose(a.exp().log().data, a.data)

    def test_sqrt(self):
        a = Tensor([4.0], requires_grad=True)
        out = a.sqrt()
        out.backward(np.array([1.0]))
        assert np.allclose(out.data, [2.0])
        assert np.allclose(a.grad, [0.25])

    def test_abs_grad_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().backward(np.ones(2))
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_tanh_sigmoid_ranges(self):
        a = Tensor(np.linspace(-5, 5, 11))
        assert np.all(np.abs(a.tanh().data) <= 1.0)
        sig = a.sigmoid().data
        assert np.all((sig > 0) & (sig < 1))

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).backward(np.ones(3))
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.ones((2, 1)))
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad_scaling(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(a.grad, np.full((2, 3, 4), 1.0 / 8.0))

    def test_var_matches_numpy(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 7))
        assert np.allclose(Tensor(x).var().data, x.var())

    def test_max_grad_goes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 4.0], [3.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        assert np.allclose(out.data, [4.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_axes_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.transpose(1, 0).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_flatten_from(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten_from(1).shape == (2, 12)

    def test_pad2d_and_grad(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = a.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert a.pad2d(0) is a

    def test_getitem_grad_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_concatenate_values_and_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)
