"""Quantization: eqn-1 quantizer, STE fake-quant, plans and snapping.

Includes hypothesis property tests on the quantizer's core invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.quant import (
    HARDWARE_PRECISIONS,
    FakeQuantize,
    LayerQuantSpec,
    QuantizationPlan,
    STEQuantFunction,
    UniformQuantizer,
    dequantize,
    quantize,
    snap_to_hardware_precision,
)

arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=64
).map(lambda xs: np.array(xs))


class TestQuantizeFunction:
    def test_eqn1_worked_example(self):
        # x in [0, 3], k=2: levels {0,1,2,3}, scale = 1.
        x = np.array([0.0, 1.0, 2.0, 3.0])
        assert np.array_equal(quantize(x, 2), [0, 1, 2, 3])

    def test_codes_in_range(self, rng):
        x = rng.normal(size=100)
        codes = quantize(x, 3)
        assert codes.min() >= 0
        assert codes.max() <= 7

    def test_degenerate_range_maps_to_zero(self):
        assert np.array_equal(quantize(np.full(5, 2.5), 4), np.zeros(5))

    def test_explicit_range_clips(self):
        codes = quantize(np.array([-10.0, 10.0]), 4, x_min=0.0, x_max=1.0)
        assert np.array_equal(codes, [0, 15])

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), 0)

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), 4, x_min=1.0, x_max=0.0)

    def test_dequantize_endpoints(self):
        vals = dequantize(np.array([0, 15]), 4, -2.0, 2.0)
        assert np.allclose(vals, [-2.0, 2.0])

    def test_dequantize_degenerate(self):
        vals = dequantize(np.array([0, 0]), 4, 1.5, 1.5)
        assert np.allclose(vals, [1.5, 1.5])

    @given(arrays, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_property_fake_quant_error_bounded(self, x, bits):
        """|x - Q(x)| <= half a quantization step, for all inputs."""
        quantizer = UniformQuantizer(bits)
        reconstructed = quantizer.fake_quant(x)
        span = x.max() - x.min()
        if span == 0:
            assert np.allclose(reconstructed, x.min())
            return
        step = span / (2**bits - 1)
        assert np.all(np.abs(reconstructed - x) <= step / 2 + 1e-9 * max(1.0, span))

    @given(arrays, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_property_level_count(self, x, bits):
        """Fake-quantized output takes at most 2^bits distinct values."""
        out = UniformQuantizer(bits).fake_quant(x)
        assert len(np.unique(out)) <= 2**bits

    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_property_idempotent(self, x):
        """Fake quantization is idempotent at fixed range/bits."""
        q = UniformQuantizer(4, dynamic=False).calibrate(x)
        once = q.fake_quant(x)
        twice = q.fake_quant(once)
        assert np.allclose(once, twice)

    @given(arrays, st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_property_endpoints_exactly_representable(self, x, bits):
        """Min-max quantization reproduces the range endpoints exactly.

        (Note: error is *not* pointwise monotone in bits — the 2^k grids
        are not nested — but each grid always contains x_min and x_max.)
        """
        out = UniformQuantizer(bits).fake_quant(x)
        span = max(1.0, float(np.abs(x).max()))
        assert np.min(np.abs(out - x.min())) <= 1e-9 * span
        assert np.min(np.abs(out - x.max())) <= 1e-9 * span


class TestUniformQuantizer:
    def test_static_requires_calibration(self):
        q = UniformQuantizer(4, dynamic=False)
        with pytest.raises(RuntimeError):
            q.encode(np.ones(3))

    def test_static_reuses_range(self, rng):
        q = UniformQuantizer(4, dynamic=False).calibrate(np.array([0.0, 1.0]))
        codes = q.encode(np.array([2.0]))  # clipped to calibration range
        assert codes[0] == 15

    def test_num_levels(self):
        assert UniformQuantizer(3).num_levels == 8

    def test_dynamic_decode_requires_reference(self):
        q = UniformQuantizer(4)
        with pytest.raises(ValueError):
            q.decode(np.array([1]))

    def test_encode_decode_roundtrip_static(self, rng):
        x = rng.normal(size=50)
        q = UniformQuantizer(8, dynamic=False).calibrate(x)
        reconstructed = q.decode(q.encode(x))
        assert np.allclose(reconstructed, q.fake_quant(x))

    def test_one_bit_two_levels(self, rng):
        x = rng.normal(size=100)
        out = UniformQuantizer(1).fake_quant(x)
        assert set(np.round(np.unique(out), 9)) <= {
            round(x.min(), 9),
            round(x.max(), 9),
        }


class TestSTE:
    def test_forward_is_quantized(self, rng):
        x = Tensor(rng.normal(size=20), requires_grad=True)
        out = STEQuantFunction(x, UniformQuantizer(2))
        assert len(np.unique(out.data)) <= 4

    def test_gradient_passes_straight_through(self, rng):
        x = Tensor(rng.normal(size=20), requires_grad=True)
        out = STEQuantFunction(x, UniformQuantizer(2))
        upstream = rng.normal(size=20)
        out.backward(upstream)
        assert np.allclose(x.grad, upstream)

    def test_fake_quantize_wrapper_disabled(self, rng):
        fq = FakeQuantize(4, enabled=False)
        x = Tensor(rng.normal(size=5))
        assert fq(x) is x

    def test_fake_quantize_bits_setter(self):
        fq = FakeQuantize(8)
        fq.bits = 3
        assert fq.bits == 3
        with pytest.raises(ValueError):
            fq.bits = 0

    def test_fake_quant_array_matches_tensor_path(self, rng):
        fq = FakeQuantize(5)
        x = rng.normal(size=17)
        assert np.allclose(fq.fake_quant_array(x), fq(Tensor(x)).data)


class TestSnapping:
    @pytest.mark.parametrize(
        "bits,expected",
        [(1, 2), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8), (9, 16), (16, 16),
         (22, 16), (24, 16), (32, 16)],
    )
    def test_paper_rule(self, bits, expected):
        """'3-bits would be translated to 4-bits, 5-bits to 8-bits'; above
        the largest supported precision the platform saturates at 16."""
        assert snap_to_hardware_precision(bits) == expected

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            snap_to_hardware_precision(0)

    def test_custom_supported_set(self):
        assert snap_to_hardware_precision(3, (4, 8)) == 4
        assert snap_to_hardware_precision(9, (4, 8)) == 8

    def test_hardware_precisions_constant(self):
        assert HARDWARE_PRECISIONS == (2, 4, 8, 16)


class TestPlan:
    def make_plan(self):
        return QuantizationPlan(
            [
                LayerQuantSpec("conv1", 16, frozen=True),
                LayerQuantSpec("conv2", 5),
                LayerQuantSpec("fc", 16, frozen=True),
            ]
        )

    def test_bit_widths(self):
        assert self.make_plan().bit_widths() == [16, 5, 16]

    def test_hardware_bit_widths(self):
        assert self.make_plan().hardware_bit_widths() == [16, 8, 16]

    def test_by_name(self):
        assert self.make_plan().by_name("conv2").bits == 5
        with pytest.raises(KeyError):
            self.make_plan().by_name("missing")

    def test_copy_is_deep(self):
        plan = self.make_plan()
        clone = plan.copy()
        clone.specs[1].bits = 2
        assert plan.specs[1].bits == 5

    def test_len_iter_getitem(self):
        plan = self.make_plan()
        assert len(plan) == 3
        assert plan[0].name == "conv1"
        assert [s.name for s in plan] == ["conv1", "conv2", "fc"]

    def test_invalid_spec_bits(self):
        with pytest.raises(ValueError):
            LayerQuantSpec("x", 0)
