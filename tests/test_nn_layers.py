"""Layer behaviour: shapes, gradients, quant hooks, BN statistics."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad_check
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.quant import FakeQuantize


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_stride_halves(self, rng):
        layer = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 4, 8, 8)

    def test_no_bias_option(self, rng):
        layer = Conv2d(2, 2, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_invalid_channels(self, rng):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3, rng=rng)

    def test_weight_fake_quant_hook_applied(self, rng):
        layer = Conv2d(2, 2, 3, rng=rng)
        layer.weight_fake_quant = FakeQuantize(2)
        effective = layer.effective_weight()
        assert len(np.unique(effective.data)) <= 4  # 2 bits -> 4 levels

    def test_weight_fake_quant_none_passthrough(self, rng):
        layer = Conv2d(2, 2, 3, rng=rng)
        assert layer.effective_weight() is layer.weight

    def test_gradients_flow_to_master_weights_through_quant(self, rng):
        layer = Conv2d(2, 2, 3, rng=rng)
        layer.weight_fake_quant = FakeQuantize(4)
        out = layer(Tensor(rng.normal(size=(1, 2, 5, 5))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.data.shape


class TestLinearLayer:
    def test_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_quant_hook(self, rng):
        layer = Linear(8, 8, rng=rng)
        layer.weight_fake_quant = FakeQuantize(1)
        assert len(np.unique(layer.effective_weight().data)) <= 2

    def test_invalid_features(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 0, rng=rng)


class TestBatchNorm2d:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x))
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # full replacement for testing
        x = rng.normal(loc=3.0, size=(16, 2, 4, 4))
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-7)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(10):
            bn(Tensor(rng.normal(loc=1.0, size=(8, 2, 3, 3))))
        bn.eval()
        x = rng.normal(loc=1.0, size=(4, 2, 3, 3))
        out = bn(Tensor(x))
        inv = 1.0 / np.sqrt(bn.running_var + bn.eps)
        expected = (x - bn.running_mean[None, :, None, None]) * inv[None, :, None, None]
        assert np.allclose(out.data, expected, atol=1e-7)

    def test_train_gradients_numerical(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)

        def f(x_, g_, b_):
            bn.gamma, bn.beta = g_, b_
            return bn(x_)

        gamma = Tensor(rng.normal(size=2) + 1.0, requires_grad=True)
        beta = Tensor(rng.normal(size=2), requires_grad=True)
        # BatchNorm recomputes batch stats each call, so grad_check works.
        assert grad_check(f, [x, gamma, beta], atol=1e-5)

    def test_eval_gradients_numerical(self, rng):
        bn = BatchNorm2d(2)
        bn(Tensor(rng.normal(size=(8, 2, 3, 3))))
        bn.eval()
        x = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        assert grad_check(lambda x_: bn(x_), [x], atol=1e-5)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(np.zeros((2, 3))))

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(np.zeros((2, 4, 5, 5))))


class TestSimpleLayers:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_maxpool_layer(self, rng):
        out = MaxPool2d(2)(Tensor(rng.normal(size=(1, 2, 8, 8))))
        assert out.shape == (1, 2, 4, 4)

    def test_avgpool_layer(self, rng):
        out = AvgPool2d(2)(Tensor(rng.normal(size=(1, 2, 8, 8))))
        assert out.shape == (1, 2, 4, 4)

    def test_global_avg_pool(self, rng):
        out = GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 5, 7, 7))))
        assert out.shape == (2, 5, 1, 1)

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        assert Identity()(x) is x

    def test_dropout_train_vs_eval(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((20, 20)))
        layer.train()
        out_train = layer(x)
        assert (out_train.data == 0).any()
        layer.eval()
        out_eval = layer(x)
        assert np.allclose(out_eval.data, 1.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
