"""Model variants: BN-free VGG, width extremes, geometry recording."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Trainer
from repro.models import resnet18, vgg11, vgg19
from repro.nn import Adam, CrossEntropyLoss


class TestBatchNormFreeVGG:
    def test_no_bn_modules(self, rng):
        model = vgg19(width_multiplier=0.125, batch_norm=False, rng=rng)
        for handle in model.layer_handles():
            if handle.is_conv:
                assert handle.unit.bn is None

    def test_conv_has_bias_without_bn(self, rng):
        model = vgg11(width_multiplier=0.125, batch_norm=False, rng=rng)
        first = model.layer_handles()[0].unit
        assert first.conv.bias is not None

    def test_conv_has_no_bias_with_bn(self, rng):
        model = vgg11(width_multiplier=0.125, batch_norm=True, rng=rng)
        first = model.layer_handles()[0].unit
        assert first.conv.bias is None

    def test_forward_and_train_step(self, rng, tiny_loader):
        model = vgg11(
            num_classes=4, width_multiplier=0.125, image_size=8,
            batch_norm=False, rng=rng,
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
        stats = trainer.train_epoch(tiny_loader)
        assert np.isfinite(stats.loss)

    def test_bn_free_density_not_pinned_at_half(self, rng, tiny_loader):
        """BN pins post-ReLU density near 0.5; without BN it can drift."""
        model = vgg11(
            num_classes=4, width_multiplier=0.125, image_size=8,
            batch_norm=False, rng=rng,
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), CrossEntropyLoss())
        for _ in range(6):
            trainer.train_epoch(tiny_loader)
        values = np.array(list(trainer.monitor.latest().values()))
        assert values.std() > 0.02  # heterogeneous profile


class TestGeometryRecording:
    def test_conv_units_record_spatial_sizes(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        model.eval()
        model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        first = model.layer_handles()[0].unit
        assert first.last_input_hw == (32, 32)
        assert first.last_output_hw == (32, 32)

    def test_resnet_downsample_geometry(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        model.eval()
        model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        block3 = list(model.blocks)[2]  # stage-2 entry, stride 2
        assert block3.downsample is not None
        assert block3.downsample.last_input_hw == (32, 32)
        assert block3.downsample.last_output_hw == (16, 16)


class TestWidthExtremes:
    @pytest.mark.parametrize("width", [0.0625, 0.5, 1.0])
    def test_vgg_param_count_scales(self, rng, width):
        model = vgg11(width_multiplier=width, rng=rng)
        first = model.layer_handles()[0].unit
        assert first.conv.out_channels == max(1, round(64 * width))

    def test_resnet_width_scaling(self, rng):
        narrow = resnet18(width_multiplier=0.125, rng=rng)
        wide = resnet18(width_multiplier=0.25, rng=np.random.default_rng(0))
        assert wide.count_parameters() > 3 * narrow.count_parameters()


class TestRegistryNavigation:
    def test_by_name_and_names(self, micro_resnet):
        registry = micro_resnet.layer_handles()
        assert registry.by_name("conv1").role == "first"
        assert registry.names()[0] == "conv1"
        assert registry.names()[-1] == "fc"
        with pytest.raises(KeyError):
            registry.by_name("bogus")

    def test_duplicate_names_rejected(self, micro_vgg):
        from repro.models.registry import LayerRegistry

        handles = list(micro_vgg.layer_handles())
        with pytest.raises(ValueError):
            LayerRegistry(handles + [handles[0]])

    def test_meters_map(self, micro_vgg):
        meters = micro_vgg.layer_handles().meters()
        assert set(meters) == set(micro_vgg.layer_handles().names())

    def test_current_bits_none_when_unquantized(self, micro_vgg):
        for handle in micro_vgg.layer_handles():
            assert handle.current_bits() is None

    def test_apply_bits_disabled_reports_none(self, micro_vgg):
        handle = micro_vgg.layer_handles()[1]
        handle.apply_bits(8, enabled=False)
        assert handle.current_bits() is None
