"""Module system: registration, traversal, modes, state dicts."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import BatchNorm2d, Conv2d, Linear, Module, Parameter, Sequential
from repro.nn.module import ModuleList


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))

    def forward(self, x):
        return x + self.weight


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Leaf()

    def forward(self, x):
        return self.b(self.a(x))


class TestRegistration:
    def test_parameter_registered(self):
        leaf = Leaf()
        assert "weight" in leaf._parameters

    def test_module_registered(self):
        nested = Nested()
        assert set(nested._modules) == {"a", "b"}

    def test_reassignment_to_plain_value_unregisters(self):
        leaf = Leaf()
        leaf.weight = None
        assert "weight" not in leaf._parameters

    def test_buffer_registration(self):
        bn = BatchNorm2d(4)
        names = dict(bn.named_buffers())
        assert "running_mean" in names
        assert "running_var" in names

    def test_set_buffer_unknown_name_raises(self):
        bn = BatchNorm2d(4)
        with pytest.raises(KeyError):
            bn._set_buffer("nope", np.zeros(4))


class TestTraversal:
    def test_named_parameters_nested_prefixes(self):
        nested = Nested()
        names = [n for n, _ in nested.named_parameters()]
        assert names == ["a.weight", "b.weight"]

    def test_parameters_count(self):
        nested = Nested()
        assert sum(p.size for p in nested.parameters()) == 6

    def test_modules_yields_all(self):
        nested = Nested()
        assert len(list(nested.modules())) == 3

    def test_children_direct_only(self):
        nested = Nested()
        assert len(list(nested.children())) == 2

    def test_count_parameters(self):
        assert Nested().count_parameters() == 6


class TestModes:
    def test_train_eval_propagates(self):
        nested = Nested()
        nested.eval()
        assert not nested.training
        assert not nested.a.training
        nested.train()
        assert nested.a.training

    def test_zero_grad_clears(self):
        leaf = Leaf()
        out = leaf(Tensor(np.zeros(3)))
        out.sum().backward()
        assert leaf.weight.grad is not None
        leaf.zero_grad()
        assert leaf.weight.grad is None


class TestStateDict:
    def test_roundtrip(self, rng):
        src = Conv2d(2, 3, 3, rng=rng)
        dst = Conv2d(2, 3, 3, rng=rng)
        dst.load_state_dict(src.state_dict())
        assert np.allclose(src.weight.data, dst.weight.data)
        assert np.allclose(src.bias.data, dst.bias.data)

    def test_buffers_roundtrip(self, rng):
        src = BatchNorm2d(3)
        src(Tensor(rng.normal(size=(4, 3, 5, 5))))  # populate running stats
        dst = BatchNorm2d(3)
        dst.load_state_dict(src.state_dict())
        assert np.allclose(src.running_mean, dst.running_mean)
        assert np.allclose(src.running_var, dst.running_var)

    def test_shape_mismatch_raises(self, rng):
        src = Linear(4, 5, rng=rng)
        dst = Linear(4, 6, rng=rng)
        with pytest.raises((ValueError, KeyError)):
            dst.load_state_dict(src.state_dict())

    def test_unknown_key_raises(self, rng):
        dst = Linear(4, 5, rng=rng)
        state = dst.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            dst.load_state_dict(state)

    def test_state_dict_copies_data(self, rng):
        layer = Linear(3, 3, rng=rng)
        state = layer.state_dict()
        state["weight"][:] = 0
        assert not np.allclose(layer.weight.data, 0)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Leaf(), Leaf())
        out = seq(Tensor(np.zeros(3)))
        assert np.allclose(out.data, [2.0, 2.0, 2.0])

    def test_len_iter_getitem(self):
        seq = Sequential(Leaf(), Leaf(), Leaf())
        assert len(seq) == 3
        assert len(list(seq)) == 3
        assert isinstance(seq[1], Leaf)

    def test_append(self):
        seq = Sequential(Leaf())
        seq.append(Leaf())
        assert len(seq) == 2

    def test_parameters_visible(self):
        seq = Sequential(Leaf(), Leaf())
        assert seq.count_parameters() == 6


class TestModuleList:
    def test_registration_and_iteration(self):
        mlist = ModuleList([Leaf(), Leaf()])
        assert len(mlist) == 2
        assert len(list(mlist)) == 2
        assert mlist[0] is not mlist[1]

    def test_append(self):
        mlist = ModuleList()
        mlist.append(Leaf())
        assert len(mlist) == 1

    def test_call_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList([Leaf()])(Tensor(np.zeros(3)))

    def test_parameters_traversed(self):
        mlist = ModuleList([Leaf(), Leaf()])
        assert sum(p.size for p in mlist.parameters()) == 6


class TestRepr:
    def test_repr_contains_children(self):
        text = repr(Nested())
        assert "Leaf" in text
        assert "(a)" in text
