"""Sharding: deterministic partitioning of sweep points across hosts."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import experiments
from repro.orchestration import (
    ShardSpec,
    SweepConfig,
    expand,
    shard_assignment,
    shard_points,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


def six_point_sweep():
    return SweepConfig(
        name="six",
        base=experiments.get_config("vgg11-micro-smoke"),
        seeds=(0, 1, 2, 3, 4, 5),
    )


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("0/4") == ShardSpec(0, 4)
        assert ShardSpec.parse("3/4") == ShardSpec(3, 4)
        assert str(ShardSpec(1, 3)) == "1/3"

    @pytest.mark.parametrize("spec", ["", "1", "a/b", "1/", "/2", "0.5/2"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="bad shard spec"):
            ShardSpec.parse(spec)

    @pytest.mark.parametrize("index,total", [(4, 4), (-1, 2), (0, 0), (2, 1)])
    def test_out_of_range_rejected(self, index, total):
        with pytest.raises(ValueError):
            ShardSpec(index, total)


class TestPartition:
    def test_union_is_full_set_and_shards_are_disjoint(self):
        points = expand(six_point_sweep())
        for total in (1, 2, 3, 4):
            shards = [
                shard_points(points, ShardSpec(i, total)) for i in range(total)
            ]
            keys = [
                {p.config.cache_key() for p in shard} for shard in shards
            ]
            # Pairwise disjoint...
            assert sum(len(k) for k in keys) == len(set().union(*keys))
            # ...and the union is exactly the unsharded point set.
            assert set().union(*keys) == {p.config.cache_key() for p in points}

    def test_shards_preserve_expansion_order_and_indices(self):
        points = expand(six_point_sweep())
        for i in range(3):
            shard = shard_points(points, ShardSpec(i, 3))
            indices = [p.index for p in shard]
            assert indices == sorted(indices)
            for point in shard:
                assert points[point.index] == point

    def test_single_shard_is_identity(self):
        points = expand(six_point_sweep())
        assert shard_points(points, ShardSpec(0, 1)) == points

    def test_assignment_is_content_addressed(self):
        # Same config => same shard, regardless of position or label.
        points = expand(six_point_sweep())
        relabeled = [
            type(p)(label=f"x{i}", config=p.config, index=i)
            for i, p in enumerate(reversed(points))
        ]
        for point, twin in zip(points, reversed(relabeled)):
            assert shard_assignment(point, 4) == shard_assignment(twin, 4)

    def test_duplicate_points_share_a_shard(self):
        points = expand(six_point_sweep())
        twin = type(points[0])(label="twin", config=points[0].config, index=99)
        for total in (2, 3, 5):
            assert shard_assignment(points[0], total) \
                == shard_assignment(twin, total)

    def test_expand_assigns_contiguous_indices(self):
        points = expand(six_point_sweep())
        assert [p.index for p in points] == list(range(len(points)))

    def test_assignment_stable_across_processes(self):
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.api import experiments\n"
            "from repro.orchestration import (ShardSpec, SweepConfig,\n"
            "                                 expand, shard_points)\n"
            "sweep = SweepConfig(name='six',\n"
            "    base=experiments.get_config('vgg11-micro-smoke'),\n"
            "    seeds=(0, 1, 2, 3, 4, 5))\n"
            "shard = shard_points(expand(sweep), ShardSpec(0, 3))\n"
            "print('\\n'.join(p.label for p in shard))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, SRC],
            capture_output=True, text=True, check=True,
        )
        local = shard_points(expand(six_point_sweep()), ShardSpec(0, 3))
        assert out.stdout.split() == [p.label for p in local]


class TestShardAwarePresets:
    def test_get_sweep_points_matches_expand(self):
        assert experiments.get_sweep_points("smoke-seeds") \
            == expand(experiments.get_sweep("smoke-seeds"))

    def test_get_sweep_points_shard_union(self):
        full = experiments.get_sweep_points("smoke-seeds")
        shard0 = experiments.get_sweep_points("smoke-seeds", shard="0/2")
        shard1 = experiments.get_sweep_points("smoke-seeds", shard="1/2")
        assert sorted(p.label for p in shard0 + shard1) \
            == sorted(p.label for p in full)
        assert not {p.label for p in shard0} & {p.label for p in shard1}

    def test_get_sweep_points_accepts_shard_spec(self):
        assert experiments.get_sweep_points("smoke-seeds", ShardSpec(0, 2)) \
            == experiments.get_sweep_points("smoke-seeds", shard="0/2")
