"""CLI: sharded sweeps, cache transport, merge-sweeps, streaming --out."""

import json

import pytest

from repro.api import experiments
from repro.cli import _parse_axis, main
from repro.orchestration import SweepConfig


def micro_sweep_config():
    return SweepConfig(
        name="micro-dist",
        base=experiments.get_config("vgg11-micro-smoke").evolve(
            quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
                   "min_epochs_per_iteration": 1}
        ),
        seeds=(0, 1),
    )


def report_view(payload):
    """The shard-invariant fields of a sweep --out payload (no durations)."""
    return [
        (p["index"], p["label"], p["key"], p["status"], p["config"],
         p["report"], p["error"])
        for p in payload["points"]
    ]


@pytest.fixture(scope="module")
def dist(tmp_path_factory):
    """Run the full two-host workflow once: shards, transport, merge."""
    root = tmp_path_factory.mktemp("dist")
    sweep_path = root / "sweep.json"
    micro_sweep_config().to_json(sweep_path)

    def sweep(out, cache_dir, *extra):
        code = main(["sweep", "--config", str(sweep_path), "--quiet",
                     "--out", str(root / out),
                     "--cache-dir", str(root / cache_dir), *extra])
        assert code == 0
        return json.loads((root / out).read_text())

    full = sweep("full.json", "cache-full")
    shard0 = sweep("s0.json", "cache-a", "--shard", "0/2")
    shard1 = sweep("s1.json", "cache-b", "--shard", "1/2")

    # Host B publishes its cache as a tarball; host A imports it.
    assert main(["cache", "export", "--cache-dir", str(root / "cache-b"),
                 "--out", str(root / "b.tgz"), "--quiet"]) == 0
    assert main(["cache", "import", str(root / "b.tgz"),
                 "--cache-dir", str(root / "cache-a"), "--quiet"]) == 0
    assert main(["merge-sweeps", str(root / "s0.json"), str(root / "s1.json"),
                 "--out", str(root / "merged.json"), "--quiet"]) == 0
    merged = json.loads((root / "merged.json").read_text())
    return {"root": root, "sweep_path": sweep_path, "full": full,
            "shard0": shard0, "shard1": shard1, "merged": merged}


class TestShardedWorkflow:
    def test_shards_partition_the_sweep(self, dist):
        full_keys = {p["key"] for p in dist["full"]["points"]}
        keys0 = {p["key"] for p in dist["shard0"]["points"]}
        keys1 = {p["key"] for p in dist["shard1"]["points"]}
        assert not keys0 & keys1
        assert keys0 | keys1 == full_keys
        assert dist["shard0"]["stats"]["total"] \
            + dist["shard1"]["stats"]["total"] == 2

    def test_merged_report_bit_identical_to_unsharded(self, dist):
        assert report_view(dist["merged"]) == report_view(dist["full"])
        assert dist["merged"]["stats"] == dist["full"]["stats"]

    def test_merged_aggregate_equals_unsharded_aggregate(self, dist):
        from repro.core.export import sweep_report_from_payload

        assert sweep_report_from_payload(dist["merged"]) \
            == sweep_report_from_payload(dist["full"])

    def test_merged_cache_serves_unsharded_sweep(self, dist):
        root = dist["root"]
        code = main(["sweep", "--config", str(dist["sweep_path"]), "--quiet",
                     "--out", str(root / "warm.json"),
                     "--cache-dir", str(root / "cache-a")])
        assert code == 0
        warm = json.loads((root / "warm.json").read_text())
        assert warm["stats"] == {"total": 2, "executed": 0, "cached": 2,
                                 "failed": 0}
        assert [p["report"] for p in warm["points"]] \
            == [p["report"] for p in dist["full"]["points"]]

    def test_bad_shard_spec_is_clean_error(self, dist, capsys):
        assert main(["sweep", "--config", str(dist["sweep_path"]),
                     "--quiet", "--shard", "2/2"]) == 2
        err = capsys.readouterr().err
        assert "shard index" in err and "Traceback" not in err

    def test_conflicting_cache_merge_is_clean_error(self, dist, capsys,
                                                    tmp_path):
        from repro.orchestration import ResultCache

        config = micro_sweep_config().base
        conflicting = ResultCache(tmp_path / "conflict")
        conflicting.store(
            config.evolve(model={"seed": 0}, data={"seed": 0}),
            {"report": {"architecture": "tampered", "dataset": "d",
                        "layer_names": [], "rows": []}, "artifacts": {}},
        )
        code = main(["cache", "merge", str(tmp_path / "conflict"),
                     "--cache-dir", str(dist["root"] / "cache-full")])
        assert code == 2
        err = capsys.readouterr().err
        assert "conflict" in err and "Traceback" not in err

    def test_missing_cache_source_is_clean_error(self, dist, capsys):
        assert main(["cache", "merge", str(dist["root"] / "nope"),
                     "--cache-dir", str(dist["root"] / "cache-a")]) == 2
        assert "no such cache source" in capsys.readouterr().err

    def test_merge_sweeps_rejects_run_report_files(self, dist, capsys,
                                                   tmp_path):
        # Feeding a `repro run --out` report to merge-sweeps is a
        # plausible mix-up; it must exit 2, not write an empty merge.
        report = tmp_path / "run-report.json"
        report.write_text(json.dumps(
            {"config": {"name": "x"}, "report": {"rows": []}}
        ))
        assert main(["merge-sweeps", str(report),
                     "--out", str(tmp_path / "m.json")]) == 2
        err = capsys.readouterr().err
        assert "not a sweep --out payload" in err and "Traceback" not in err
        assert not (tmp_path / "m.json").exists()

    def test_merge_sweeps_missing_file_is_clean_error(self, dist, capsys):
        assert main(["merge-sweeps", str(dist["root"] / "absent.json"),
                     "--out", str(dist["root"] / "x.json")]) == 2
        assert "cannot read sweep output" in capsys.readouterr().err

    def test_shard_outs_record_expansion_total(self, dist):
        for name in ("full", "shard0", "shard1"):
            assert dist[name]["expansion_total"] == 2

    def test_merging_an_undercovering_shard_alone_fails(self, dist, capsys,
                                                        tmp_path):
        # Each shard file alone merges successfully iff it covers the
        # whole recorded expansion (forgotten shard files fail loudly
        # even when the missing points are an expansion-order suffix).
        for name, payload in (("s0", dist["shard0"]), ("s1", dist["shard1"])):
            code = main(["merge-sweeps", str(dist["root"] / f"{name}.json"),
                         "--out", str(tmp_path / f"{name}-alone.json"),
                         "--quiet"])
            if len(payload["points"]) == payload["expansion_total"]:
                assert code == 0
            else:
                assert code == 2
                assert "missing point indices" in capsys.readouterr().err

    def test_merge_sweeps_incomplete_shards_is_clean_error(self, dist,
                                                           capsys, tmp_path):
        # A shard file whose points skip index 0 means another shard's
        # output is absent; merging must fail loudly, not reorder.
        partial = dict(dist["full"])
        partial["points"] = [
            p for p in dist["full"]["points"] if p["index"] != 0
        ]
        partial_path = tmp_path / "partial.json"
        partial_path.write_text(json.dumps(partial))
        assert main(["merge-sweeps", str(partial_path),
                     "--out", str(tmp_path / "bad.json")]) == 2
        err = capsys.readouterr().err
        assert "missing point indices" in err and "Traceback" not in err


class TestStreamingOut:
    def test_out_written_incrementally_and_valid_mid_sweep(self, tmp_path):
        # Snapshot --out after every point event: each snapshot must be
        # valid JSON with the full point skeleton.
        sweep_path = tmp_path / "sweep.json"
        micro_sweep_config().to_json(sweep_path)
        out = tmp_path / "out.json"
        snapshots = []

        import repro.cli as cli

        original = cli._SweepOutStream.on_point

        def snapshotting(self, result, position, total):
            original(self, result, position, total)
            snapshots.append(json.loads(out.read_text()))

        cli._SweepOutStream.on_point = snapshotting
        try:
            code = main(["sweep", "--config", str(sweep_path), "--quiet",
                         "--out", str(out),
                         "--cache-dir", str(tmp_path / "cache")])
        finally:
            cli._SweepOutStream.on_point = original
        assert code == 0
        assert len(snapshots) == 2
        assert snapshots[0]["stats"] == {"total": 2, "executed": 1,
                                         "cached": 0, "failed": 0,
                                         "pending": 1}
        statuses = [p["status"] for p in snapshots[0]["points"]]
        assert sorted(statuses) == ["ok", "pending"]
        # The final snapshot equals the file the CLI leaves behind.
        assert snapshots[1] == json.loads(out.read_text())

    def test_failed_point_leaves_valid_out(self, tmp_path):
        bad_base = experiments.get_config("vgg11-micro-smoke").evolve(
            prune={"enabled": True, "fused": True, "min_channels": 10000}
        )
        sweep_path = tmp_path / "sweep.json"
        SweepConfig(name="bad", base=bad_base).to_json(sweep_path)
        out = tmp_path / "out.json"
        code = main(["sweep", "--config", str(sweep_path), "--quiet",
                     "--out", str(out),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 1  # failed point -> nonzero, but out is complete
        payload = json.loads(out.read_text())
        assert payload["stats"]["failed"] == 1
        assert payload["points"][0]["error"]

    def test_skeleton_written_before_first_point(self, tmp_path):
        # An immediately-failing resolve still leaves no file; a started
        # sweep writes the all-pending skeleton before training begins.
        from repro.cli import _SweepOutStream
        from repro.orchestration import expand

        points = expand(micro_sweep_config())
        out = tmp_path / "out.json"
        _SweepOutStream(out, "micro-dist", points,
                        expansion_total=len(points)).write()
        payload = json.loads(out.read_text())
        assert payload["stats"]["pending"] == 2
        assert payload["expansion_total"] == 2
        assert all(p["status"] == "pending" for p in payload["points"])


class TestAxisParsing:
    def test_quoted_json_string_may_contain_commas(self):
        axis = _parse_axis('model.arch=["a,b"]')
        assert axis.values == (["a,b"],)

    def test_quoted_string_values_with_commas(self):
        axis = _parse_axis('name="x,y","z"')
        assert axis.values == ("x,y", "z")

    def test_json_objects_survive_splitting(self):
        axis = _parse_axis('extra={"a": 1, "b": 2},{"c": 3}')
        assert axis.values == ({"a": 1, "b": 2}, {"c": 3})

    def test_plain_values_split_as_before(self):
        axis = _parse_axis("quant.initial_bits=8,16,32")
        assert axis.values == (8, 16, 32)

    def test_escaped_quote_inside_string(self):
        axis = _parse_axis('name="a\\",b",c')
        assert axis.values == ('a",b', "c")


class TestSingleExpansion:
    def test_cli_sweep_never_re_expands(self, tmp_path, monkeypatch):
        # Regression: _resolve_sweep used to expand for validation and
        # SweepRunner.run expanded again, rebuilding every preset config.
        import repro.orchestration.runner as runner_mod

        def boom(sweep):
            raise AssertionError("runner re-expanded the sweep")

        monkeypatch.setattr(runner_mod, "expand", boom)
        sweep_path = tmp_path / "sweep.json"
        micro_sweep_config().to_json(sweep_path)
        assert main(["sweep", "--config", str(sweep_path), "--quiet",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
