"""Speculative search execution must be bit-identical to sequential.

The whole promise of ``--speculate K`` is that it is an *execution*
knob, not a search knob: the chosen trial sequence, report rows, best
bit vector, cache contents, and every intermediate streamed ``--out``
payload are byte-for-byte what the unspeculated sequential search
produces — speculation only changes which configs get *started* early,
never which results become visible.  These tests pin that invariant the
same way ``test_orchestration_scheduler.py`` pinned the scheduler/
executor split against the pre-split runner: run the sequential search
as the reference, then run the speculative search at several ``K`` and
``jobs`` values on fresh caches and diff everything observable.

The trial landscape is a deterministic fake ``execute`` (a pure
function of the config, like real trials): feasibility flips on the
mean bit-width, activation density drifts linearly with it, and the
per-layer analytical energies are a fixed weighting of the bit vector.
That makes every sequential decision — and therefore every speculative
bet — exactly predictable, so the tests can also assert *which* configs
must never leak: the known-cancelled bets.
"""

import copy

import pytest

from repro.api import experiments
from repro.orchestration import ResultCache
from repro.orchestration.search import (
    SearchConfig,
    SpeculativeScheduler,
    build_scheduler,
    run_search,
    search_out_payload,
)

LAYERS = ("conv0", "conv1", "conv2", "fc")
# Per-layer energy weights (pJ per bit).  The spread is wide enough
# that one-bit moves never reorder the energy ranking, so the layer
# search's accept-guess bets (ranked with the *stale* incumbent
# energies) predict the sequential move exactly.
WEIGHTS = {"conv0": 12.0, "conv1": 20.0, "conv2": 8.0, "fc": 4.0}
FEASIBLE_MEAN_BITS = 3.75  # mean width at/above which accuracy holds


def _vector_of(config_dict: dict) -> dict:
    """The per-layer assignment a task's config pins (or implies)."""
    quant = config_dict["quant"]
    pinned = quant.get("layer_bits") or {}
    return {
        name: pinned.get(name, quant["initial_bits"]) for name in LAYERS
    }


def fake_execute(task: dict) -> dict:
    """A deterministic trial: a pure function of the config.

    Module-level so it pickles into process-pool workers.  Mirrors the
    payload shape of real runs closely enough for the search machinery:
    a report with one row (bit widths, accuracy, total AD) and the
    analytical-energy artifact with absolute and per-layer energies.
    """
    vector = _vector_of(task["config"])
    mean_bits = sum(vector.values()) / len(vector)
    accuracy = 0.9 if mean_bits >= FEASIBLE_MEAN_BITS else 0.6
    total_ad = min(0.95, max(0.05, 0.55 + 0.02 * (mean_bits - 8)))
    per_layer = {name: bits * WEIGHTS[name] for name, bits in vector.items()}
    model_pj = sum(per_layer.values())
    baseline_pj = 16 * sum(WEIGHTS.values())
    return {
        "index": task["index"],
        "status": "ok",
        "payload": {
            "report": {
                "architecture": "fake-net",
                "dataset": "fake-data",
                "layer_names": list(LAYERS),
                "rows": [{
                    "iteration": 1,
                    "label": "fake",
                    "bit_widths": [vector[name] for name in LAYERS],
                    "channel_counts": None,
                    "test_accuracy": accuracy,
                    "total_ad": total_ad,
                    "energy_efficiency": baseline_pj / model_pj,
                    "epochs": 1,
                    "train_complexity": 1.0,
                }],
            },
            "artifacts": {
                "analytical_energy": {
                    "model_total_pj": model_pj,
                    "baseline_total_pj": baseline_pj,
                    "per_layer_pj": per_layer,
                },
            },
        },
        "duration": 0.0,
    }


def spec_base():
    return experiments.get_config("vgg11-micro-smoke").evolve(
        quant={"initial_bits": 8},
    )


def ad_search(**overrides):
    """Sequential trace: bits 8 -> 4 (eqn. 3) -> 2 (infeasible)
    -> 3 (bisection, infeasible) -> done."""
    kwargs = dict(
        name="spec-ad", base=spec_base(), strategy="ad-bits",
        accuracy_drop=0.05, max_trials=6, min_bits=2,
    )
    kwargs.update(overrides)
    return SearchConfig(**kwargs)


def layer_search(**overrides):
    """Seed trace as above (4 trials), survivor uniform-4; then
    [conv1=3] accepted -> [conv1=2] infeasible -> [conv2=3]
    infeasible -> done at the trial budget."""
    kwargs = dict(
        name="spec-layer", base=spec_base(), strategy="layer-bits",
        accuracy_drop=0.05, max_trials=7, seed_trials=4, min_bits=2,
    )
    kwargs.update(overrides)
    return SearchConfig(**kwargs)


def _normalized(payload: dict) -> dict:
    """A search --out payload with run-local durations zeroed."""
    payload = copy.deepcopy(payload)
    for point in payload["points"]:
        if "duration" in point:
            point["duration"] = 0.0
    return payload


class GrowingStream:
    """Records the search --out payload after every driver event.

    Mirrors the CLI's streaming writer: the point list grows via
    ``on_schedule`` (searches discover their points as they go) and
    every event snapshots the full payload, so two runs writing the
    same sequence would produce the same ``--out`` file at every
    instant — the streamed half of the bit-identity invariant.
    """

    def __init__(self, search, scheduler):
        self.search = search
        self.scheduler = scheduler
        self.points = []
        self.results = []
        self.writes = []

    def on_schedule(self, new_points, total):
        self.points.extend(new_points)
        self.results.extend([None] * len(new_points))
        self._write()

    def on_point(self, result, position, total):
        self.results[position] = result
        self._write()

    def _write(self):
        self.writes.append(_normalized(search_out_payload(
            self.search, self.search.name, self.points, self.results,
            best=self.scheduler.best(),
            baseline=self.scheduler.baseline(),
            feasibility=self.scheduler.feasibility(),
        )))


def run_once(search, jobs, cache):
    """One full search through the real driver, capturing the stream."""
    scheduler = build_scheduler(search)
    stream = GrowingStream(search, scheduler)
    result = run_search(
        search, jobs=jobs, cache=cache, execute=fake_execute,
        on_point=stream.on_point, on_schedule=stream.on_schedule,
        scheduler=scheduler,
    )
    return result, stream


def cache_snapshot(cache: ResultCache) -> dict:
    """Every cache entry, keyed — cancelled bets must never appear."""
    return {key: cache.read_entry(key) for key in cache.keys()}


def assert_bit_identical(reference, ref_stream, ref_cache,
                         candidate, cand_stream, cand_cache):
    assert _normalized(candidate.to_dict()) == _normalized(
        reference.to_dict())
    assert [(p.label, p.status, p.key) for p in candidate.points] == \
        [(p.label, p.status, p.key) for p in reference.points]
    assert candidate.feasibility == reference.feasibility
    assert (candidate.best.key if candidate.best else None) == \
        (reference.best.key if reference.best else None)
    assert candidate.report().format() == reference.report().format()
    assert cand_stream.writes == ref_stream.writes
    assert cache_snapshot(cand_cache) == cache_snapshot(ref_cache)


SEARCHES = {"ad-bits": ad_search, "layer-bits": layer_search}


class TestBitIdentity:
    """Acceptance: speculative == sequential, bit for bit, at every
    ``--speculate K`` and on both executor backends."""

    @pytest.mark.parametrize("strategy", sorted(SEARCHES))
    def test_serial_executor_every_k(self, tmp_path, strategy):
        make = SEARCHES[strategy]
        ref_cache = ResultCache(tmp_path / "seq")
        reference, ref_stream = run_once(make(), jobs=1, cache=ref_cache)
        assert reference.best is not None  # the landscape found a winner
        for k in (1, 2, 3):
            cand_cache = ResultCache(tmp_path / f"spec{k}")
            candidate, cand_stream = run_once(
                make(speculation=k), jobs=1, cache=cand_cache)
            assert_bit_identical(reference, ref_stream, ref_cache,
                                 candidate, cand_stream, cand_cache)
            # jobs == 1 degrades to pure sequential: bets queue behind
            # the real trial and are always cancelled while queued.
            stats = candidate.stats
            assert stats["wasted_trials"] == 0
            assert stats["executed"] == reference.stats["executed"]

    @pytest.mark.parametrize("strategy", sorted(SEARCHES))
    @pytest.mark.parametrize("k", [1, 3])
    def test_process_executor(self, tmp_path, strategy, k):
        make = SEARCHES[strategy]
        ref_cache = ResultCache(tmp_path / "seq")
        reference, ref_stream = run_once(make(), jobs=1, cache=ref_cache)
        cand_cache = ResultCache(tmp_path / f"spec{k}")
        candidate, cand_stream = run_once(
            make(speculation=k), jobs=4, cache=cand_cache)
        assert_bit_identical(reference, ref_stream, ref_cache,
                             candidate, cand_stream, cand_cache)

    def test_warm_cache_replay_identical(self, tmp_path):
        # Both runs warm: every trial is a cache hit (speculative bets
        # included — a bet on a cached config is held, not re-run), and
        # the hit accounting matches the sequential run's exactly.
        make = SEARCHES["layer-bits"]
        ref_cache = ResultCache(tmp_path / "seq")
        run_once(make(), jobs=1, cache=ref_cache)
        reference, ref_stream = run_once(make(), jobs=1, cache=ref_cache)
        cand_cache = ResultCache(tmp_path / "spec")
        run_once(make(speculation=2), jobs=2, cache=cand_cache)
        candidate, cand_stream = run_once(
            make(speculation=2), jobs=2, cache=cand_cache)
        assert_bit_identical(reference, ref_stream, ref_cache,
                             candidate, cand_stream, cand_cache)
        assert candidate.stats["cached"] == reference.stats["cached"]
        assert candidate.stats["cache_hits"] == reference.stats["cache_hits"]
        assert candidate.stats["executed"] == 0


class TestQuarantine:
    """Cancelled bets must never become observable anywhere."""

    def test_cancelled_bet_absent_from_cache_and_stream(self, tmp_path):
        # The very first AD bet is known: with no density estimate yet,
        # the wrapper bets on the saturated 1-bit step (bits=7) while
        # trial 8 runs; the real next trial is 4, so the bet is always
        # cancelled.  Its config must never reach the cache or any
        # streamed payload — even under the process executor, where the
        # bet genuinely executes on a worker before the cancel lands.
        search = ad_search(speculation=3)
        loser = spec_base().evolve(quant={"initial_bits": 7})
        cache = ResultCache(tmp_path / "cache")
        result, stream = run_once(search, jobs=4, cache=cache)

        assert cache.load(loser) is None
        assert loser.cache_key() not in cache.keys()
        trial_keys = {p.key for p in result.points}
        assert loser.cache_key() not in trial_keys
        assert set(cache.keys()) == trial_keys
        for write in stream.writes:
            streamed = {point["key"] for point in write["points"]}
            assert streamed <= trial_keys
            assert loser.cache_key() not in streamed

    def test_speculative_labels_never_streamed(self, tmp_path):
        for make in SEARCHES.values():
            result, stream = run_once(
                make(speculation=2), jobs=4,
                cache=ResultCache(tmp_path / make().name))
            assert all("speculative:" not in p.label
                       for p in result.points)
            for write in stream.writes:
                assert all("speculative:" not in point["label"]
                           for point in write["points"])


class TestAccounting:
    """Satellite: speculation stats surface in ``.stats`` only —
    excluded from ``to_dict()`` exactly like the cache stats."""

    SPEC_KEYS = {"speculated", "confirmed", "cancelled", "wasted_trials"}

    def test_stats_present_and_settled(self, tmp_path):
        result, _ = run_once(ad_search(speculation=2), jobs=2,
                             cache=ResultCache(tmp_path / "c"))
        stats = result.stats
        assert self.SPEC_KEYS <= set(stats)
        # Every bet settles as exactly one of confirmed / cancelled,
        # and only cancelled bets can waste a worker's work.
        assert stats["speculated"] == \
            stats["confirmed"] + stats["cancelled"]
        assert stats["confirmed"] >= 1  # the landscape is predictable
        assert 0 <= stats["wasted_trials"] <= stats["cancelled"]

    def test_stats_excluded_from_payloads(self, tmp_path):
        result, stream = run_once(ad_search(speculation=2), jobs=2,
                                  cache=ResultCache(tmp_path / "c"))
        assert not self.SPEC_KEYS & set(result.to_dict()["stats"])
        for write in stream.writes:
            assert not self.SPEC_KEYS & set(write["stats"])

    def test_sequential_runs_carry_no_speculation_stats(self, tmp_path):
        result, _ = run_once(ad_search(), jobs=1,
                             cache=ResultCache(tmp_path / "c"))
        assert not self.SPEC_KEYS & set(result.stats)


class TestConfigSurface:
    """The ``speculation`` knob's validation and serialization."""

    def test_rejected_for_halving(self):
        with pytest.raises(ValueError, match="halving"):
            ad_search(strategy="halving", speculation=2, min_bits=2,
                      budgets=(1, 2), axes=())

    def test_rejected_when_negative(self):
        with pytest.raises(ValueError, match="speculation"):
            ad_search(speculation=-1)

    def test_excluded_from_dict_and_cache_key(self):
        plain, speculated = ad_search(), ad_search(speculation=3)
        assert "speculation" not in plain.to_dict()
        assert speculated.to_dict() == plain.to_dict()
        assert speculated.cache_key() == plain.cache_key()

    def test_round_trip_defaults_off(self):
        rebuilt = SearchConfig.from_dict(ad_search(speculation=3).to_dict())
        assert rebuilt.speculation == 0

    def test_build_scheduler_wraps_only_when_on(self):
        assert isinstance(build_scheduler(ad_search(speculation=1)),
                          SpeculativeScheduler)
        assert not isinstance(build_scheduler(ad_search()),
                              SpeculativeScheduler)

    def test_wrapper_needs_a_speculatable_scheduler(self):
        class Opaque:
            name = "opaque"

            def next_points(self, completed):
                return []

        with pytest.raises(TypeError, match="speculative_candidates"):
            SpeculativeScheduler(Opaque(), 2)
