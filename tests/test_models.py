"""VGG/ResNet topology, registry wiring, skip-connection rules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import resnet18, vgg11, vgg16, vgg19
from repro.models.blocks import ConvUnit, MeasurementContext
from repro.quant import FakeQuantize


class TestVGGTopology:
    def test_vgg19_layer_count_matches_table2a(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        # Table II(a) bit vectors have 17 entries: 16 convs + 1 FC.
        assert len(model.layer_handles()) == 17

    def test_vgg16_and_vgg11_counts(self, rng):
        assert len(vgg16(width_multiplier=0.125, rng=rng).layer_handles()) == 14
        assert len(vgg11(width_multiplier=0.125, rng=rng).layer_handles()) == 9

    def test_roles(self, rng):
        registry = vgg19(width_multiplier=0.125, rng=rng).layer_handles()
        assert registry[0].role == "first"
        assert registry[-1].role == "last"
        assert all(h.role == "hidden" for h in list(registry)[1:-1])

    def test_forward_shape(self, rng):
        model = vgg19(num_classes=10, width_multiplier=0.125, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_small_image_skips_late_pools(self, rng):
        model = vgg19(num_classes=4, width_multiplier=0.125, image_size=8, rng=rng)
        out = model(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 4)

    def test_width_multiplier_scales_channels(self, rng):
        model = vgg19(width_multiplier=0.5, rng=rng)
        first = model.layer_handles()[0].unit
        assert first.conv.out_channels == 32

    def test_channel_floor_at_one(self, rng):
        model = vgg11(width_multiplier=0.001, rng=rng)
        assert all(
            h.unit.conv.out_channels >= 1
            for h in model.layer_handles()
            if h.is_conv
        )

    def test_quantizable_excludes_first_last(self, rng):
        registry = vgg19(width_multiplier=0.125, rng=rng).layer_handles()
        names = [h.name for h in registry.quantizable()]
        assert "conv1" not in names
        assert "fc" not in names
        assert len(names) == 15

    def test_disabled_unit_passthrough(self, rng):
        model = vgg11(num_classes=4, width_multiplier=0.25, image_size=16, rng=rng)
        # Batch > 1: with a single sample, train-mode BN on 1x1 feature
        # maps has zero variance and zeroes the deep activations.
        x = Tensor(rng.normal(size=(4, 3, 16, 16)))
        # conv with equal in/out channels can be disabled.
        handle = next(
            h for h in model.layer_handles()
            if h.is_conv and h.unit.conv.in_channels == h.unit.conv.out_channels
        )
        baseline = model(x).data
        handle.unit.enabled = False
        changed = model(x).data
        handle.unit.enabled = True
        assert changed.shape == baseline.shape
        assert not np.allclose(changed, baseline)


class TestResNetTopology:
    def test_layer_count_18(self, rng):
        # stem + 16 block convs + fc.
        assert len(resnet18(width_multiplier=0.125, rng=rng).layer_handles()) == 18

    def test_forward_shape(self, rng):
        model = resnet18(num_classes=7, width_multiplier=0.125, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 7)

    def test_downsample_blocks_have_followers(self, rng):
        registry = resnet18(width_multiplier=0.125, rng=rng).layer_handles()
        followed = [h for h in registry if h.follower_units]
        # Stages 2-4 entry blocks have projection skips: 3 blocks.
        assert len(followed) == 3
        assert all(h.name.endswith("conv2") for h in followed)

    def test_all_conv2_have_skip_quant_follower(self, rng):
        registry = resnet18(width_multiplier=0.125, rng=rng).layer_handles()
        conv2_handles = [h for h in registry if h.name.endswith("conv2")]
        assert len(conv2_handles) == 8
        assert all(len(h.follower_quants) == 1 for h in conv2_handles)

    def test_apply_bits_synchronizes_skip_branch(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        handle = model.layer_handles().by_name("block3.conv2")
        handle.apply_bits(4)
        block = handle.host
        assert block.skip_quant.enabled
        assert block.skip_quant.bits == 4
        assert handle.follower_units[0].conv.weight_fake_quant.bits == 4
        assert block.act_quant.bits == 4

    def test_stage_downsampling_spatial(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        blocks = list(model.blocks)
        assert blocks[0].unit1.last_output_hw == (32, 32)
        assert blocks[2].unit1.last_output_hw == (16, 16)
        assert blocks[4].unit1.last_output_hw == (8, 8)
        assert blocks[6].unit1.last_output_hw == (4, 4)

    def test_quantizable_excludes_first_last(self, rng):
        registry = resnet18(width_multiplier=0.125, rng=rng).layer_handles()
        assert len(registry.quantizable()) == 16

    def test_invalid_stage_count(self, rng):
        from repro.models import ResNet

        with pytest.raises(ValueError):
            ResNet([2, 2, 2], rng=rng)


class TestConvUnitInstrumentation:
    def test_meter_collects_only_when_enabled(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, padding=1, rng=rng)
        unit(Tensor(rng.normal(size=(1, 2, 5, 5))))
        assert unit.meter.count == 0
        ctx.enabled = True
        unit(Tensor(rng.normal(size=(1, 2, 5, 5))))
        assert unit.meter.count == 4 * 25

    def test_act_quant_levels(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, padding=1, rng=rng)
        unit.act_quant = FakeQuantize(2)
        out = unit(Tensor(rng.normal(size=(1, 2, 5, 5))))
        assert len(np.unique(out.data)) <= 4

    def test_channel_mask_zeroes_output(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, padding=1, rng=rng)
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        unit.set_channel_mask(mask)
        out = unit(Tensor(rng.normal(size=(1, 2, 5, 5))))
        assert np.all(out.data[:, 1] == 0)
        assert np.all(out.data[:, 3] == 0)
        assert not np.all(out.data[:, 0] == 0)

    def test_mask_validation(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, rng=rng)
        with pytest.raises(ValueError):
            unit.set_channel_mask(np.ones(3))
        with pytest.raises(ValueError):
            unit.set_channel_mask(np.full(4, 0.5))
        with pytest.raises(ValueError):
            unit.set_channel_mask(np.zeros(4))

    def test_masked_channels_excluded_from_meter(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, padding=1, rng=rng)
        unit.set_channel_mask(np.array([1.0, 0.0, 1.0, 1.0]))
        ctx.enabled = True
        unit(Tensor(rng.normal(size=(2, 2, 5, 5))))
        # Meter sees 3 active channels x 25 positions x 2 images.
        assert unit.meter.count == 3 * 25 * 2

    def test_active_channels(self, rng):
        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 4, 3, ctx, rng=rng)
        assert unit.active_channels() == 4
        unit.set_channel_mask(np.array([1.0, 1.0, 0.0, 0.0]))
        assert unit.active_channels() == 2


class TestBasicBlockInstrumentation:
    def test_block_mask_applied_post_add(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        block = list(model.blocks)[0]
        channels = block.out_channels
        mask = np.ones(channels)
        mask[0] = 0.0
        block.set_channel_mask(mask)
        out = model.stem(Tensor(rng.normal(size=(1, 3, 8, 8))))
        out = block(out)
        assert np.all(out.data[:, 0] == 0)

    def test_block_meter_via_registry(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        handle = model.layer_handles().by_name("block1.conv2")
        model.ctx.enabled = True
        model(Tensor(rng.normal(size=(1, 3, 8, 8))))
        model.ctx.enabled = False
        assert handle.meter.count > 0

    def test_registry_rejects_bad_role(self, rng):
        from repro.models.registry import LayerHandle

        ctx = MeasurementContext()
        unit = ConvUnit("u", 2, 2, 3, ctx, rng=rng)
        with pytest.raises(ValueError):
            LayerHandle("u", unit, role="middle")
