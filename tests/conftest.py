"""Shared fixtures: deterministic RNGs, tiny datasets and models."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.models import resnet18, vgg11


@pytest.fixture(autouse=True)
def _reset_backend():
    """Restore the reference backend after every test.

    ``build_context`` / ``Experiment.run`` activate the config's backend
    process-wide; a test that ran something on the fast backend must not
    leak float32 array creation into the next test.
    """
    yield
    from repro.backend import set_active_backend, set_fusion

    set_active_backend("reference")
    set_fusion(True)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset(rng):
    """16-sample, 4-class, 3x8x8 structured dataset."""
    images = rng.normal(size=(16, 3, 8, 8))
    labels = np.repeat(np.arange(4), 4)
    return ArrayDataset(images, labels)


@pytest.fixture
def tiny_loader(tiny_dataset, rng):
    return DataLoader(tiny_dataset, batch_size=8, shuffle=True, rng=rng)


@pytest.fixture
def micro_vgg(rng):
    """Narrow VGG11 on 8x8 inputs — fast enough for unit tests."""
    return vgg11(num_classes=4, width_multiplier=0.0625, image_size=8, rng=rng)


@pytest.fixture
def micro_resnet(rng):
    """Narrow ResNet18 — used where skip-connection wiring matters."""
    return resnet18(num_classes=4, width_multiplier=0.0625, rng=rng)
