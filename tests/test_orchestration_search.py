"""SearchConfig, AD-guided bit search, successive halving, run_search."""

import pytest

from repro.api import experiments
from repro.orchestration import (
    DONE,
    ADSearchScheduler,
    LayerBitSearchScheduler,
    PointResult,
    ResultCache,
    SearchConfig,
    SuccessiveHalvingScheduler,
    SweepAxis,
    SweepResult,
    bit_vector_of,
    build_scheduler,
    planned_trials,
    run_search,
    seed_halving_grid,
)


def micro_base(**quant):
    overrides = {"max_iterations": 1, "max_epochs_per_iteration": 1,
                 "min_epochs_per_iteration": 1}
    overrides.update(quant)
    return experiments.get_config("vgg11-micro-smoke").evolve(quant=overrides)


def ad_search(**kwargs):
    defaults = dict(name="test-search", base=micro_base(),
                    strategy="ad-bits", accuracy_drop=0.05, max_trials=6,
                    min_bits=2)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


def fake_result(point, accuracy=0.5, total_ad=0.5, model_pj=1000.0,
                status="ok"):
    """A PointResult with a fabricated report (no training needed)."""
    payload = None
    if status != "failed":
        payload = {
            "report": {
                "architecture": "fake", "dataset": "fake",
                "layer_names": ["l0"],
                "rows": [{
                    "iteration": 1, "label": "",
                    "bit_widths": [16], "channel_counts": None,
                    "test_accuracy": accuracy, "total_ad": total_ad,
                    "energy_efficiency": 1.0, "epochs": 1,
                    "train_complexity": 1.0,
                }],
            },
            "artifacts": {"analytical_energy": {
                "model_total_pj": model_pj,
                "baseline_total_pj": model_pj * 2,
            }},
        }
    return PointResult(
        label=point.label, key=point.config.cache_key(), status=status,
        payload=payload, config=point.config, index=point.index,
    )


def drive(scheduler, outcomes):
    """Hand-drive a scheduler: outcomes[label-bits] -> fake_result kwargs.

    Returns the proposed bit sequence, feeding each proposal's result
    back before asking for the next.
    """
    completed = []
    proposed = []
    while True:
        batch = scheduler.next_points(tuple(completed))
        if batch is DONE:
            return proposed
        assert batch, "scheduler stalled with nothing in flight"
        for point in batch:
            bits = point.config.quant.initial_bits
            proposed.append(bits)
            completed.append(fake_result(point, **outcomes(bits)))


class TestSearchConfig:
    def test_round_trip_and_cache_key(self):
        search = ad_search()
        clone = SearchConfig.from_dict(search.to_dict())
        assert clone == search
        assert clone.cache_key() == search.cache_key()

    def test_round_trip_with_preset_and_axes(self):
        search = SearchConfig(
            name="halving", preset="vgg11-micro-smoke", strategy="halving",
            axes=(SweepAxis("quant.initial_bits", (4, 8)),),
            budgets=(1, 2), keep=0.5,
        )
        clone = SearchConfig.from_dict(search.to_dict())
        assert clone == search
        assert clone.axes[0].values == (4, 8)
        assert clone.cache_key() == search.cache_key()

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "search.json"
        search = ad_search()
        search.to_json(path)
        assert SearchConfig.from_json(path) == search

    @pytest.mark.parametrize("bad", [
        dict(base=None, preset=""),                   # neither source
        dict(preset="x"),                             # both sources
        dict(strategy="genetic"),                     # unknown strategy
        dict(objective="vibes"),                      # unknown objective
        dict(accuracy_drop=-0.1),
        dict(max_trials=0),
        dict(min_bits=0),
        dict(budgets=(1, 2)),                         # budgets w/o halving
        dict(axes=(SweepAxis("lr", (1e-3,)),)),       # axes w/o halving
    ])
    def test_validation_rejects(self, bad):
        kwargs = dict(name="s", base=micro_base(), strategy="ad-bits")
        kwargs.update(bad)
        with pytest.raises((ValueError, TypeError)):
            SearchConfig(**kwargs)

    @pytest.mark.parametrize("bad", [
        dict(budgets=()),                             # halving needs budgets
        dict(budgets=(2, 1)),                         # must increase
        dict(budgets=(1, 1)),                         # strictly
        dict(budgets=(1, 2), keep=1.0),
        dict(budgets=(1, 2), budget_path=""),
    ])
    def test_halving_validation_rejects(self, bad):
        kwargs = dict(name="s", base=micro_base(), strategy="halving",
                      budgets=(1, 2))
        kwargs.update(bad)
        with pytest.raises(ValueError):
            SearchConfig(**kwargs)

    def test_energy_objective_requires_analytical_stage(self):
        base = micro_base().evolve(energy={"analytical": False, "pim": False})
        with pytest.raises(ValueError, match="analytical energy"):
            build_scheduler(ad_search(base=base))
        # The accuracy objective has no such dependency.
        build_scheduler(ad_search(base=base, objective="test_accuracy"))

    def test_build_scheduler_dispatch(self):
        assert isinstance(build_scheduler(ad_search()), ADSearchScheduler)
        halving = SearchConfig(name="h", base=micro_base(),
                               strategy="halving", budgets=(1, 2))
        assert isinstance(build_scheduler(halving),
                          SuccessiveHalvingScheduler)

    def test_planned_trials(self):
        count, exact = planned_trials(ad_search(max_trials=5))
        assert (count, exact) == (5, False)
        halving = SearchConfig(
            name="h", base=micro_base(), strategy="halving",
            axes=(SweepAxis("quant.initial_bits", (4, 8, 16, 32)),),
            budgets=(1, 2, 3), keep=0.5,
        )
        # Rungs: 4 -> 2 -> 1.
        assert planned_trials(halving) == (7, True)


class TestADSearchScheduler:
    def test_eqn3_descent_from_total_ad(self):
        # AD 0.5 at every trial: 16 -> 8 -> 4 -> 2 (min_bits floor).
        bits = drive(
            ADSearchScheduler(ad_search()),
            lambda b: dict(accuracy=0.5, total_ad=0.5, model_pj=b * 100.0),
        )
        assert bits == [16, 8, 4, 2]

    def test_saturated_ad_steps_one_bit(self):
        # AD ~ 1.0 means eqn. 3 is a fixpoint; the search probes b-1.
        search = ad_search(max_trials=3)
        bits = drive(
            ADSearchScheduler(search),
            lambda b: dict(accuracy=0.5, total_ad=1.0, model_pj=b * 100.0),
        )
        assert bits == [16, 15, 14]

    def test_infeasible_trial_bisects_upward(self):
        # 16 ok (-> 8), 8 ok (-> 4), 4 drops too far -> bisect to 6;
        # 6 ok, and eqn. 3 would propose 3 — below the known-infeasible
        # 4 — so the search refines the {5} gap instead, pinning the
        # feasibility boundary exactly without wasting a trial.
        def outcomes(b):
            accuracy = 0.5 if b > 4 else 0.1
            return dict(accuracy=accuracy, total_ad=0.5,
                        model_pj=b * 100.0)

        scheduler = ADSearchScheduler(ad_search())
        bits = drive(scheduler, outcomes)
        assert bits == [16, 8, 4, 6, 5]
        best = scheduler.best()
        assert best.config.quant.initial_bits == 5

    def test_descent_never_probes_below_known_infeasible(self):
        # Low AD makes eqn. 3 jump aggressively: 16 -> 5 infeasible ->
        # bisect to 10; from 10 eqn. 3 would land at 3 (below the known
        # failure at 5), so proposals redirect into the 6..9 gap.
        def outcomes(b):
            accuracy = 0.5 if b > 5 else 0.1
            return dict(accuracy=accuracy, total_ad=0.3,
                        model_pj=b * 100.0)

        scheduler = ADSearchScheduler(ad_search())
        bits = drive(scheduler, outcomes)
        assert bits == [16, 5, 10, 7, 6]
        assert scheduler.best().config.quant.initial_bits == 6

    def test_best_is_lowest_energy_feasible(self):
        scheduler = ADSearchScheduler(ad_search())
        drive(scheduler,
              lambda b: dict(accuracy=0.5, total_ad=0.5, model_pj=b * 100.0))
        assert scheduler.best().config.quant.initial_bits == 2
        assert scheduler.baseline().config.quant.initial_bits == 16
        feasibility = scheduler.feasibility()
        assert all(feasibility.values()) and len(feasibility) == 4

    def test_max_trials_caps_search(self):
        bits = drive(
            ADSearchScheduler(ad_search(max_trials=2)),
            lambda b: dict(accuracy=0.5, total_ad=0.5, model_pj=b * 100.0),
        )
        assert bits == [16, 8]

    def test_crashed_baseline_ends_search(self):
        scheduler = ADSearchScheduler(ad_search())
        (point,) = scheduler.next_points(())
        result = fake_result(point, status="failed")
        assert scheduler.next_points((result,)) is DONE
        assert scheduler.best() is None

    def test_rejects_wrong_strategy(self):
        halving = SearchConfig(name="h", base=micro_base(),
                               strategy="halving", budgets=(1, 2))
        with pytest.raises(ValueError, match="ad-bits"):
            ADSearchScheduler(halving)


def layer_search(**kwargs):
    defaults = dict(name="layer-search", base=micro_base(),
                    strategy="layer-bits", accuracy_drop=0.05,
                    max_trials=6, seed_trials=2, min_bits=2)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


LAYER_NAMES = ["l0", "l1", "l2"]
# Per-bit energy weights making l1 dominate the ranking.
LAYER_WEIGHTS = {"l0": 1.0, "l1": 100.0, "l2": 1.0}


def layer_fake(point, accuracy=0.5, total_ad=0.5, status="ok"):
    """A fabricated result whose bit vector mirrors the point's config.

    Seed trials (no ``layer_bits``) pretend Algorithm 1 halved the
    hidden layer; pinned layer-move trials report exactly the proposed
    assignment.  Per-layer energies are ``bits * weight``.
    """
    payload = None
    if status != "failed":
        quant = point.config.quant
        if quant.layer_bits:
            bits = [quant.layer_bits_map[n] for n in LAYER_NAMES]
        else:
            bits = [16, max(1, quant.initial_bits // 2), 16]
        per_layer = {
            name: b * LAYER_WEIGHTS[name]
            for name, b in zip(LAYER_NAMES, bits)
        }
        model_pj = sum(per_layer.values())
        payload = {
            "report": {
                "architecture": "fake", "dataset": "fake",
                "layer_names": list(LAYER_NAMES),
                "rows": [{
                    "iteration": 1, "label": "",
                    "bit_widths": bits, "channel_counts": None,
                    "test_accuracy": accuracy, "total_ad": total_ad,
                    "energy_efficiency": 1.0, "epochs": 1,
                    "train_complexity": 1.0,
                }],
            },
            "artifacts": {"analytical_energy": {
                "model_total_pj": model_pj,
                "baseline_total_pj": model_pj * 2,
                "per_layer_pj": per_layer,
            }},
        }
    return PointResult(
        label=point.label, key=point.config.cache_key(), status=status,
        payload=payload, config=point.config, index=point.index,
    )


def drive_layers(scheduler, outcomes):
    """Hand-drive a layer-bits scheduler; returns the proposed points."""
    completed = []
    proposed = []
    while True:
        batch = scheduler.next_points(tuple(completed))
        if batch is DONE:
            return proposed
        assert batch, "scheduler stalled with nothing in flight"
        for point in batch:
            proposed.append(point)
            completed.append(layer_fake(point, **outcomes(point)))


class TestLayerBitSearchScheduler:
    def test_seed_phase_then_energy_ranked_moves(self):
        # Seed: 16 then 8 (AD 0.5, budget 2); survivor vector
        # [16, 4, 16].  Layer phase: l1 dominates the energy ranking,
        # l0/l2 are the immovable boundary layers -> moves probe l1=3
        # (feasible, accepted) then l1=2 (infeasible, reverted) -> DONE.
        def outcomes(point):
            vector = point.config.quant.layer_bits_map
            if vector and vector["l1"] <= 2:
                return dict(accuracy=0.1)
            return dict(accuracy=0.5)

        scheduler = LayerBitSearchScheduler(layer_search())
        proposed = drive_layers(scheduler, outcomes)
        labels = [p.label for p in proposed]
        assert labels == [
            "vgg11-micro-smoke[initial_bits=16]",
            "vgg11-micro-smoke[initial_bits=8]",
            "vgg11-micro-smoke[l1=3]",
            "vgg11-micro-smoke[l1=2]",
        ]
        move = proposed[2].config.quant
        assert move.layer_bits_map == {"l0": 16, "l1": 3, "l2": 16}
        assert move.layer_frozen == ("l0", "l1", "l2")
        best = scheduler.best()
        assert best.config.quant.layer_bits_map["l1"] == 3
        assert scheduler.best_bit_vector() == {"l0": 16, "l1": 3, "l2": 16}
        assert scheduler.baseline().config.quant.initial_bits == 16
        feasibility = scheduler.feasibility()
        assert len(feasibility) == 4
        assert sum(bool(v) for v in feasibility.values()) == 3

    def test_accepted_move_updates_the_incumbent(self):
        # Every move feasible: l1 walks 4 -> 3 -> 2 (min_bits floor),
        # one accepted trial at a time, then no movable layer remains.
        scheduler = LayerBitSearchScheduler(layer_search())
        proposed = drive_layers(scheduler, lambda p: dict(accuracy=0.5))
        moves = [p.config.quant.layer_bits_map.get("l1")
                 for p in proposed if p.config.quant.layer_bits]
        assert moves == [3, 2]
        assert scheduler.best_bit_vector() == {"l0": 16, "l1": 2, "l2": 16}

    def test_max_trials_caps_both_phases(self):
        scheduler = LayerBitSearchScheduler(
            layer_search(max_trials=3, seed_trials=2)
        )
        proposed = drive_layers(scheduler, lambda p: dict(accuracy=0.5))
        assert len(proposed) == 3  # 2 seed trials + 1 move

    def test_crashed_reference_ends_the_search(self):
        scheduler = LayerBitSearchScheduler(layer_search())
        (point,) = scheduler.next_points(())
        result = layer_fake(point, status="failed")
        assert scheduler.next_points((result,)) is DONE
        assert scheduler.best() is None

    def test_crashed_move_blocks_the_layer(self):
        def outcomes(point):
            vector = point.config.quant.layer_bits_map
            if vector and vector["l1"] == 3:
                return dict(status="failed")
            return dict(accuracy=0.5)

        scheduler = LayerBitSearchScheduler(layer_search())
        proposed = drive_layers(scheduler, outcomes)
        # The crashed l1=3 move blocks l1; no other layer is movable.
        assert [p.label for p in proposed][-1] == "vgg11-micro-smoke[l1=3]"
        assert scheduler.best_bit_vector() == {"l0": 16, "l1": 4, "l2": 16}

    def test_rejects_wrong_strategy(self):
        with pytest.raises(ValueError, match="layer-bits"):
            LayerBitSearchScheduler(ad_search())

    def test_requires_analytical_energy_stage(self):
        base = micro_base().evolve(energy={"analytical": False, "pim": False})
        with pytest.raises(ValueError, match="analytical"):
            LayerBitSearchScheduler(
                layer_search(base=base, objective="test_accuracy")
            )

    def test_seed_trials_validation(self):
        with pytest.raises(ValueError, match="seed_trials"):
            layer_search(seed_trials=6, max_trials=6)
        with pytest.raises(ValueError, match="seed_trials"):
            ad_search(seed_trials=2)

    def test_build_scheduler_and_planned_trials(self):
        assert isinstance(build_scheduler(layer_search()),
                          LayerBitSearchScheduler)
        assert planned_trials(layer_search(max_trials=6)) == (6, False)


class TestSeedHalvingGrid:
    def test_grid_from_ad_survivors(self):
        # Feasible at 16/8/6, infeasible at 4: the halving grid becomes
        # exactly the surviving precisions.
        def outcomes(b):
            accuracy = 0.5 if b > 4 else 0.1
            return dict(accuracy=accuracy, total_ad=0.5,
                        model_pj=b * 100.0)

        scheduler = ADSearchScheduler(ad_search())
        drive(scheduler, outcomes)
        result = run_search_result_from(scheduler)
        halving = SearchConfig(
            name="seeded", base=micro_base(), strategy="halving",
            axes=(SweepAxis("quant.initial_bits", (4, 8, 16, 32)),),
            budgets=(1, 2), keep=0.5,
        )
        seeded = seed_halving_grid(halving, result)
        (axis,) = seeded.axes
        assert axis.path == "quant.initial_bits"
        infeasible = {
            t["bits"] for t in scheduler.trials if not t["feasible"]
        }
        assert set(axis.values) == {
            t["bits"] for t in scheduler.trials if t["feasible"]
        }
        assert not infeasible & set(axis.values)

    def test_no_survivors_raises(self):
        scheduler = ADSearchScheduler(ad_search(max_trials=1))
        (point,) = scheduler.next_points(())
        result = fake_result(point, status="failed")
        assert scheduler.next_points((result,)) is DONE
        with pytest.raises(ValueError, match="survivors"):
            seed_halving_grid(
                SearchConfig(name="h", base=micro_base(),
                             strategy="halving", budgets=(1, 2)),
                run_search_result_from(scheduler),
            )

    def test_rejects_non_halving_target(self):
        scheduler = ADSearchScheduler(ad_search())
        drive(scheduler,
              lambda b: dict(accuracy=0.5, total_ad=0.5, model_pj=b * 100.0))
        with pytest.raises(ValueError, match="halving"):
            seed_halving_grid(ad_search(), run_search_result_from(scheduler))


def run_search_result_from(scheduler):
    """A SearchResult assembled from a hand-driven scheduler."""
    from repro.orchestration.search import SearchResult

    points = [t["result"] for t in scheduler.trials if t["result"]]
    return SearchResult(
        search=scheduler.search,
        sweep=SweepResult(name=scheduler.search.name, points=points),
        best=scheduler.best(),
        baseline=scheduler.baseline(),
        feasibility=scheduler.feasibility(),
    )


class TestSuccessiveHalvingScheduler:
    def halving_search(self, **kwargs):
        defaults = dict(
            name="halving", base=micro_base(), strategy="halving",
            axes=(SweepAxis("quant.initial_bits", (4, 8, 16, 32)),),
            budget_path="quant.max_iterations", budgets=(1, 2), keep=0.5,
        )
        defaults.update(kwargs)
        return SearchConfig(**defaults)

    def test_prunes_low_accuracy_half_each_rung(self):
        scheduler = SuccessiveHalvingScheduler(self.halving_search())
        rung0 = scheduler.next_points(())
        assert [p.config.quant.max_iterations for p in rung0] == [1, 1, 1, 1]
        # Higher starting bits -> higher fabricated accuracy.
        completed = [
            fake_result(p, accuracy=p.config.quant.initial_bits / 100)
            for p in rung0
        ]
        rung1 = scheduler.next_points(tuple(completed))
        assert [p.config.quant.initial_bits for p in rung1] == [32, 16]
        assert [p.config.quant.max_iterations for p in rung1] == [2, 2]
        completed += [
            fake_result(p, accuracy=p.config.quant.initial_bits / 100,
                        model_pj=p.config.quant.initial_bits * 10.0)
            for p in rung1
        ]
        assert scheduler.next_points(tuple(completed)) is DONE
        # Best by energy objective among the final rung: 16 beats 32.
        assert scheduler.best().config.quant.initial_bits == 16
        feasibility = scheduler.feasibility()
        assert sum(feasibility.values()) == 4  # 2 survivors + final rung

    def test_crashed_point_never_survives(self):
        scheduler = SuccessiveHalvingScheduler(self.halving_search())
        rung0 = scheduler.next_points(())
        completed = []
        for point in rung0:
            if point.config.quant.initial_bits == 32:
                completed.append(fake_result(point, status="failed"))
            else:
                completed.append(fake_result(
                    point, accuracy=point.config.quant.initial_bits / 100))
        rung1 = scheduler.next_points(tuple(completed))
        assert 32 not in [p.config.quant.initial_bits for p in rung1]

    def test_rejects_wrong_strategy(self):
        with pytest.raises(ValueError, match="halving"):
            SuccessiveHalvingScheduler(ad_search())


class TestRunSearchEndToEnd:
    def test_trained_search_finds_feasible_best(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        search = ad_search(accuracy_drop=0.5, max_trials=3)
        result = run_search(search, cache=cache)
        assert result.stats["total"] <= 3
        assert result.ok
        assert result.best is not None and result.baseline is not None
        # The searched best stays within the accuracy budget and costs
        # no more analytical energy than the reference trial.
        from repro.orchestration.search import trial_metrics

        best, base = trial_metrics(result.best), trial_metrics(result.baseline)
        assert best["test_accuracy"] >= base["test_accuracy"] - 0.5
        assert best["model_total_pj"] <= base["model_total_pj"]
        # And beats the uniform-precision starting network outright.
        assert best["model_total_pj"] < base["baseline_total_pj"]

        report = result.report()
        assert report.best_entry is not None
        assert "Search — test-search" in report.format()

        # Warm re-run: every trial comes back from cache, same best.
        warm = run_search(search, cache=cache)
        assert warm.stats["executed"] == 0
        assert warm.stats["cached"] == warm.stats["total"]
        assert warm.best.key == result.best.key

    def test_search_payload_shape(self, tmp_path):
        search = ad_search(accuracy_drop=0.5, max_trials=2)
        result = run_search(search)
        payload = result.to_dict()
        assert payload["sweep"] == "test-search"
        assert payload["stats"]["total"] == len(payload["points"])
        section = payload["search"]
        assert section["strategy"] == "ad-bits"
        assert section["best"]["config"] is not None
        assert section["best"]["metrics"]["model_total_pj"] > 0
        # The winning assignment rides along as a name -> bits map.
        best_metrics = section["best"]["metrics"]
        assert list(section["bit_vector"].values()) \
            == best_metrics["bit_widths"]
        assert set(section["feasibility"]) == {
            p["key"] for p in payload["points"]
        }

    def test_layer_search_never_worse_than_scalar_winner(self, tmp_path):
        # Acceptance: with the seed phase mirroring the scalar search,
        # the layer-bits winner's analytical energy is <= the scalar
        # AD-search winner's at the same accuracy budget — and the seed
        # trials replay from the scalar search's cache entries.
        cache = ResultCache(tmp_path / "cache")
        scalar = ad_search(accuracy_drop=0.5, max_trials=3)
        layer = layer_search(accuracy_drop=0.5, max_trials=5,
                             seed_trials=3, min_bits=2)
        scalar_result = run_search(scalar, cache=cache)
        layer_result = run_search(layer, cache=cache)
        assert scalar_result.ok and layer_result.ok
        assert layer_result.stats["cached"] >= scalar_result.stats["total"]
        from repro.orchestration.search import trial_metrics

        scalar_best = trial_metrics(scalar_result.best)
        layer_best = trial_metrics(layer_result.best)
        baseline = trial_metrics(layer_result.baseline)
        assert layer_best["model_total_pj"] <= scalar_best["model_total_pj"]
        assert layer_best["test_accuracy"] >= baseline["test_accuracy"] - 0.5
        # The winning vector is publishable and consistent everywhere.
        vector = bit_vector_of(layer_result.best)
        assert list(vector.values()) == layer_best["bit_widths"]
        report = layer_result.report()
        assert report.best_bit_vector == vector
        assert "bit vector:" in report.format()
