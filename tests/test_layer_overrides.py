"""Per-layer precision overrides end-to-end: config -> plan -> pipeline.

Covers the `layer_bits` / `layer_frozen` thread through the stack: the
canonicalized config form (cache-key stable, ordering-independent), the
quantizer honouring overrides and pins, the bit-vector plan round trip,
and build-time validation against the model's layer registry.
"""

import pytest

from repro.api import experiments
from repro.api.config import ExperimentConfig, QuantConfig
from repro.api.context import build_context
from repro.quant import LayerQuantSpec, QuantizationPlan


def micro_config(**updates) -> ExperimentConfig:
    config = experiments.get_config("vgg11-micro-smoke")
    return config.evolve(**updates) if updates else config


class TestQuantConfigLayerBits:
    def test_map_and_pairs_normalize_identically(self):
        from_map = QuantConfig(layer_bits={"b": 2, "a": 4})
        from_pairs = QuantConfig(layer_bits=[("a", 4), ("b", 2)])
        assert from_map == from_pairs
        assert from_map.layer_bits == (("a", 4), ("b", 2))
        assert from_map.layer_bits_map == {"a": 4, "b": 2}

    def test_cache_key_independent_of_map_ordering(self):
        # Satellite: trial configs differing only in layer_bits ordering
        # must share one cache entry.
        one = micro_config(quant={"layer_bits": {"conv2": 3, "conv3": 5}})
        two = micro_config(quant={"layer_bits": {"conv3": 5, "conv2": 3}})
        assert one == two
        assert one.cache_key() == two.cache_key()

    def test_unset_map_keeps_the_historical_cache_key(self):
        # Regression: configs that never touch layer_bits must hash
        # exactly as they did before the field existed, so warm
        # `.repro-cache` entries keep hitting.  Keys recorded from the
        # PR-4 code base.
        assert micro_config().cache_key() == (
            "21ef20295fc964c65ca95a2cc6e763ae23e36ed3fd7927ad6a783b0924c8ec43"
        )
        assert experiments.get_config("vgg19-cifar10-quant").cache_key() == (
            "8453ffc1e13ae742a521418ef21aec204c5dd1beb1db3afcac13d26f271067f4"
        )
        assert ExperimentConfig().cache_key() == (
            "a97431af07fa27dbe6f8fd28a4054c51ac4c750451fe5bcbbe5ac63641db8933"
        )

    def test_to_dict_omits_empty_maps(self):
        payload = micro_config().to_dict()
        assert "layer_bits" not in payload["quant"]
        assert "layer_frozen" not in payload["quant"]

    def test_dict_and_json_round_trip(self, tmp_path):
        config = micro_config(quant={
            "layer_bits": {"conv2": 3, "conv4": 6},
            "layer_frozen": ["conv2"],
        })
        payload = config.to_dict()
        assert payload["quant"]["layer_bits"] == {"conv2": 3, "conv4": 6}
        assert payload["quant"]["layer_frozen"] == ["conv2"]
        assert ExperimentConfig.from_dict(payload) == config
        path = tmp_path / "config.json"
        config.to_json(path)
        assert ExperimentConfig.from_json(path) == config
        hash(config)  # canonical tuples keep the config hashable

    def test_evolve_replaces_the_map_wholesale(self):
        config = micro_config(quant={"layer_bits": {"conv2": 3}})
        cleared = config.evolve(quant={"layer_bits": {}})
        assert cleared.quant.layer_bits == ()
        assert cleared.cache_key() == micro_config().cache_key()

    @pytest.mark.parametrize("bad", [
        {"layer_bits": {"conv2": 0}},            # bits < 1
        {"layer_bits": {"conv2": 2.5}},          # non-integer bits
        {"layer_bits": {"": 4}},                 # empty name
        {"layer_bits": [("conv2", 4, 1)]},       # malformed pair
        {"layer_bits": [("conv2", 4), ("conv2", 8)]},  # duplicate name
        {"layer_frozen": ["conv2", "conv2"]},    # duplicate pin
        {"layer_frozen": [7]},                   # non-string pin
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            QuantConfig(**bad)


class TestQuantizerHonoursOverrides:
    def test_initial_plan_applies_overrides_and_pins(self, micro_vgg):
        from repro.core import ADQuantizer, QuantizationSchedule, Trainer
        from repro.nn import Adam, CrossEntropyLoss

        trainer = Trainer(micro_vgg, Adam(micro_vgg.parameters(), lr=3e-3),
                          CrossEntropyLoss())
        schedule = QuantizationSchedule(
            initial_bits=16,
            layer_bits={"conv2": 4, "conv1": 8},
            layer_frozen=("conv3",),
        )
        plan = ADQuantizer(trainer, schedule).initial_plan()
        assert plan.by_name("conv2").bits == 4
        # An explicit entry wins even on the role-frozen first layer.
        assert plan.by_name("conv1").bits == 8
        assert plan.by_name("conv1").frozen
        assert plan.by_name("conv3").bits == 16
        assert plan.by_name("conv3").frozen
        assert plan.by_name("conv4").bits == 16
        assert not plan.by_name("conv4").frozen

    def test_unknown_layer_rejected_by_initial_plan(self, micro_vgg):
        from repro.core import ADQuantizer, QuantizationSchedule, Trainer
        from repro.nn import Adam, CrossEntropyLoss

        trainer = Trainer(micro_vgg, Adam(micro_vgg.parameters(), lr=3e-3),
                          CrossEntropyLoss())
        quantizer = ADQuantizer(
            trainer, QuantizationSchedule(layer_bits={"nope": 4})
        )
        with pytest.raises(ValueError, match="nope"):
            quantizer.initial_plan()

    def test_update_plan_keeps_pinned_layers_fixed(self, micro_vgg):
        from repro.core import ADQuantizer, QuantizationSchedule, Trainer
        from repro.nn import Adam, CrossEntropyLoss

        trainer = Trainer(micro_vgg, Adam(micro_vgg.parameters(), lr=3e-3),
                          CrossEntropyLoss())
        names = micro_vgg.layer_handles().names()
        quantizer = ADQuantizer(
            trainer,
            QuantizationSchedule(layer_frozen=("conv2",)),
        )
        quantizer.apply_plan(quantizer.initial_plan())
        densities = {name: 0.5 for name in names}
        updated = quantizer.update_plan(densities)
        assert updated.by_name("conv2").bits == 16   # pinned
        assert updated.by_name("conv3").bits == 8    # eqn. 3 applied

    def test_all_pinned_run_trains_one_iteration(self):
        # A fully-pinned assignment is an eqn.-3 fixpoint: the pipeline
        # trains exactly one iteration at the proposed vector.
        config = micro_config()
        names = ["conv1", "conv2", "conv3", "conv4", "conv5", "conv6",
                 "conv7", "conv8", "fc"]
        vector = {name: 16 for name in names}
        vector.update({"conv2": 5, "conv5": 3})
        pinned = config.evolve(quant={
            "layer_bits": vector, "layer_frozen": names,
        })
        experiment = experiments.Experiment(pinned)
        report = experiment.run()
        assert len(report.rows) == 1
        assert report.rows[0].bit_widths == [vector[n] for n in names]
        energy = experiment.artifacts["analytical_energy"]
        assert energy["bit_vector"] == vector
        assert len(energy["hardware_bit_widths"]) == len(names)


class TestBuildContextValidation:
    def test_unknown_layer_fails_at_build_time(self):
        config = micro_config(quant={"layer_bits": {"bogus": 4}})
        with pytest.raises(ValueError, match="bogus"):
            build_context(config)

    def test_cli_run_reports_unknown_layer_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        config = micro_config(quant={"layer_bits": {"bogus": 4}})
        path = tmp_path / "bad.json"
        config.to_json(path)
        assert main(["run", "--config", str(path), "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "Traceback" not in err

    def test_unknown_pin_fails_at_build_time(self):
        config = micro_config(quant={"layer_frozen": ["bogus"]})
        with pytest.raises(ValueError, match="bogus"):
            build_context(config)


class TestBitVectorRoundTrip:
    def test_plan_to_vector_to_plan(self):
        plan = QuantizationPlan([
            LayerQuantSpec("a", 16, frozen=True),
            LayerQuantSpec("b", 3),
            LayerQuantSpec("c", 5),
        ])
        vector = plan.to_bit_vector()
        assert vector == {"a": 16, "b": 3, "c": 5}
        clone = QuantizationPlan.from_bit_vector(vector, frozen=("a",))
        assert clone.to_bit_vector() == vector
        assert clone.bit_widths() == plan.bit_widths()
        assert [s.name for s in clone] == [s.name for s in plan]
        assert clone.by_name("a").frozen and not clone.by_name("b").frozen

    def test_from_pairs_preserves_order(self):
        plan = QuantizationPlan.from_bit_vector([("z", 4), ("a", 8)])
        assert [s.name for s in plan] == ["z", "a"]
        assert plan.bit_widths() == [4, 8]
