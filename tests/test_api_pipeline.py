"""Pipeline semantics: stage ordering, hook firing, stage behaviours."""

import json

import pytest

from repro.api import (
    DataConfig,
    EnergyReportStage,
    ExperimentConfig,
    ExportStage,
    FinalTuneStage,
    ModelConfig,
    PIMEvalStage,
    Pipeline,
    PipelineCallback,
    PruneStage,
    QuantConfig,
    QuantizeStage,
    Stage,
    build_context,
)


def micro_config(**updates) -> ExperimentConfig:
    config = ExperimentConfig(
        name="micro",
        architecture="VGG11",
        dataset="SyntheticCIFAR10",
        model=ModelConfig(arch="vgg11", num_classes=10, width_multiplier=0.0625,
                          image_size=8, seed=0),
        data=DataConfig(dataset="synthetic-cifar10", train_per_class=3,
                        test_per_class=1, image_size=8, seed=0,
                        train_batch_size=15, test_batch_size=10),
        quant=QuantConfig(max_iterations=2, max_epochs_per_iteration=1,
                          min_epochs_per_iteration=1, saturation_window=2,
                          saturation_tolerance=0.9),
    )
    return config.evolve(**updates) if updates else config


class Recorder(PipelineCallback):
    def __init__(self):
        self.events = []

    def on_pipeline_start(self, ctx):
        self.events.append("pipeline_start")

    def on_pipeline_end(self, ctx, report):
        self.events.append("pipeline_end")

    def on_stage_start(self, ctx, stage):
        self.events.append(f"stage_start:{stage.name}")

    def on_stage_end(self, ctx, stage):
        self.events.append(f"stage_end:{stage.name}")

    def on_iteration_end(self, ctx, row):
        self.events.append(f"iteration:{row.iteration}")


class TestPipelineProtocol:
    def test_stage_ordering_and_hook_firing(self):
        recorder = Recorder()
        ctx = build_context(micro_config())
        pipeline = Pipeline(
            [QuantizeStage(), EnergyReportStage()], callbacks=[recorder]
        )
        report = pipeline.run(ctx)
        iterations = [e for e in recorder.events if e.startswith("iteration")]
        assert len(iterations) == len(report.rows)
        # Stage hooks bracket each stage, in declaration order.
        stage_events = [e for e in recorder.events if e.startswith("stage")]
        assert stage_events == [
            "stage_start:quantize",
            "stage_end:quantize",
            "stage_start:energy-report",
            "stage_end:energy-report",
        ]
        assert recorder.events[0] == "pipeline_start"
        assert recorder.events[-1] == "pipeline_end"

    def test_rejects_non_stage(self):
        with pytest.raises(TypeError, match="not a Stage"):
            Pipeline([object()])

    def test_emit_rejects_unknown_hook(self):
        with pytest.raises(ValueError, match="unknown hook"):
            Pipeline([]).emit("on_made_up_event")

    def test_early_stop_via_callback(self):
        class StopAfterFirst(PipelineCallback):
            def on_iteration_end(self, ctx, row):
                ctx.request_stop()

        ctx = build_context(micro_config(quant={"max_iterations": 3}))
        report = Pipeline([QuantizeStage()], callbacks=[StopAfterFirst()]).run(ctx)
        assert len(report.rows) == 1

    def test_stop_request_does_not_poison_later_pipelines(self):
        class StopAfterFirst(PipelineCallback):
            def on_iteration_end(self, ctx, row):
                ctx.request_stop()

        ctx = build_context(micro_config(quant={"max_iterations": 3}))
        Pipeline([QuantizeStage()], callbacks=[StopAfterFirst()]).run(ctx)
        rows_after_first = len(ctx.report.rows)
        # A later pipeline (no stop callback) over the same context must
        # run its full iteration budget, not inherit the stale flag.
        Pipeline([QuantizeStage()]).run(ctx)
        assert len(ctx.report.rows) > rows_after_first + 1

    def test_prepare_is_idempotent_across_pipelines(self):
        ctx = build_context(micro_config())
        first = Pipeline([QuantizeStage()]).run(ctx)
        rows_before = list(first.rows)
        second = Pipeline([EnergyReportStage()]).run(ctx)
        # Same context, same report object; nothing was reset.
        assert second is first
        assert second.rows == rows_before
        assert "analytical_energy" in ctx.artifacts

    def test_run_config_builds_fresh_context(self):
        report = Pipeline([QuantizeStage()]).run_config(micro_config())
        assert report.rows

    def test_custom_stage_composes(self):
        class MarkerStage(Stage):
            name = "marker"

            def run(self, ctx):
                ctx.artifacts["marker"] = True

        ctx = build_context(micro_config())
        Pipeline([QuantizeStage(), MarkerStage()]).run(ctx)
        assert ctx.artifacts["marker"] is True


class TestStages:
    def test_final_tune_extends_last_row(self):
        ctx = build_context(micro_config(quant={"final_epochs": 2}))
        report = Pipeline([QuantizeStage(), FinalTuneStage()]).run(ctx)
        assert report.rows[-1].epochs == 1 + 2

    def test_final_tune_explicit_epochs_override(self):
        ctx = build_context(micro_config())
        report = Pipeline([QuantizeStage(), FinalTuneStage(epochs=3)]).run(ctx)
        assert report.rows[-1].epochs == 1 + 3

    def test_fused_prune_reports_channel_counts(self):
        config = micro_config(prune={"enabled": True, "fused": True})
        ctx = build_context(config)
        report = Pipeline([QuantizeStage()]).run(ctx)
        assert all(r.channel_counts is not None for r in report.rows)
        if len(report.rows) > 1:
            first, last = report.rows[0], report.rows[-1]
            assert sum(last.channel_counts) <= sum(first.channel_counts)

    def test_standalone_prune_stage_appends_labeled_row(self):
        config = micro_config(prune={"enabled": True, "fused": False})
        ctx = build_context(config)
        report = Pipeline(
            [QuantizeStage(), PruneStage(retrain_epochs=1, label="post-prune")]
        ).run(ctx)
        assert report.rows[-1].label == "post-prune"
        assert report.rows[-1].channel_counts is not None
        assert sum(report.rows[-1].channel_counts) <= sum(
            report.rows[0].channel_counts
        )

    def test_pim_eval_stage_artifacts(self):
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage(), PIMEvalStage()]).run(ctx)
        pim = ctx.artifacts["pim_energy"]
        assert pim["full_precision_uj"] > 0
        assert pim["reduction"] == pytest.approx(
            pim["full_precision_uj"] / pim["mixed_precision_uj"]
        )

    def test_export_stage_json(self, tmp_path):
        path = tmp_path / "report.json"
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage(), EnergyReportStage(), ExportStage(path)]).run(ctx)
        payload = json.loads(path.read_text())
        assert payload["config"]["name"] == "micro"
        assert len(payload["report"]["rows"]) == len(ctx.report.rows)
        assert "analytical_energy" in payload["artifacts"]
        assert str(path) in ctx.artifacts["exports"]

    def test_export_stage_csv(self, tmp_path):
        path = tmp_path / "report.csv"
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage(), ExportStage(path, format="csv")]).run(ctx)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(ctx.report.rows)  # header + rows

    def test_export_stage_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            ExportStage(tmp_path / "x", format="yaml")


class TestBuildContext:
    def test_prune_config_controls_pruner(self):
        assert build_context(micro_config()).pruner is None
        ctx = build_context(micro_config(prune={"enabled": True}))
        assert ctx.pruner is not None
        assert ctx.fuse_prune is True

    def test_resnet_and_sgd_paths(self):
        config = micro_config(
            architecture="ResNet18",
            model={"arch": "resnet18"},
            optimizer="sgd",
        )
        ctx = build_context(config)
        assert len(ctx.model.layer_handles()) == 18
        report = Pipeline([QuantizeStage()]).run(ctx)
        assert report.rows
