"""Fused elementwise-kernel contract tests.

Three guarantees, one file:

1. on the **reference** backend every fused chain is *bit-identical* to
   the per-primitive seed graph it replaced (``use_fusion(False)`` keeps
   that graph alive to diff against), so pinned trajectories and cache
   keys cannot move;
2. on the **fast** backend every fused kernel agrees with the reference
   within float32 round-off, forward and backward, contiguous or not
   (hypothesis-driven differential tests);
3. fused chains save only their minimal backward residual — the
   log-softmax closure no longer pins the softmax matrix for the
   graph's lifetime — and the per-iteration graph gets smaller.
"""

import gc
import weakref

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.autograd.conv import max_pool2d
from repro.autograd.functional import (cross_entropy, dropout, log_softmax,
                                       softmax)
from repro.autograd.gradcheck import grad_check
from repro.backend import active_backend, use_backend, use_fusion
from repro.nn.layers import BatchNorm2d, Linear
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD

RTOL = 1e-3
ATOL = 1e-3

ARRAYS = st.integers(min_value=0, max_value=2**31 - 1).map(
    lambda seed: np.random.default_rng(seed)
)


def _run(backend_name, fused, func, arrays):
    """``(output, grads)`` of ``func(*arrays)`` on one backend/fusion mode."""
    with use_backend(backend_name), use_fusion(fused):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        out = func(*tensors)
        out.sum().backward()
        return out.data.copy(), [t.grad.copy() for t in tensors]


def assert_fused_matches_unfused_exactly(func, arrays):
    """On the reference backend, fused == unfused down to the last bit."""
    fused_out, fused_grads = _run("reference", True, func, arrays)
    plain_out, plain_grads = _run("reference", False, func, arrays)
    assert fused_out.tobytes() == plain_out.tobytes()
    for index, (fused, plain) in enumerate(zip(fused_grads, plain_grads)):
        assert fused.tobytes() == plain.tobytes(), (
            f"fused reference gradient moved for input {index}"
        )


def assert_fast_matches_reference(func, arrays, rtol=RTOL, atol=ATOL):
    ref_out, ref_grads = _run("reference", True, func, arrays)
    fast_out, fast_grads = _run("fast", True, func, arrays)
    assert fast_out.dtype == np.float32
    np.testing.assert_allclose(fast_out, ref_out, rtol=rtol, atol=atol)
    for index, (fast, ref) in enumerate(zip(fast_grads, ref_grads)):
        np.testing.assert_allclose(
            fast, ref, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch on input {index}",
        )


def _micro_vgg_iteration(backend_name, fused, steps=1):
    """Losses / grads / buffers / graph size of a tiny VGG train loop."""
    from repro.models import vgg11

    with use_backend(backend_name), use_fusion(fused):
        rng = np.random.default_rng(7)
        model = vgg11(num_classes=4, width_multiplier=0.0625, image_size=8,
                      rng=np.random.default_rng(42))
        model.train()
        criterion = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        losses, nodes = [], 0
        for _ in range(steps):
            x = Tensor(rng.normal(size=(4, 3, 8, 8)))
            y = rng.integers(0, 4, size=4)
            for p in model.parameters():
                p.grad = None
            loss = criterion(model(x), y)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
            nodes = _graph_size(loss)
        grads = {name: p.grad.copy() for name, p in model.named_parameters()
                 if p.grad is not None}
        buffers = {}
        for name, module in model.named_modules():
            for buf in ("running_mean", "running_var"):
                if hasattr(module, buf):
                    buffers[f"{name}.{buf}"] = getattr(module, buf).copy()
        params = {name: p.data.copy() for name, p in model.named_parameters()}
        return losses, grads, buffers, params, nodes


def _graph_size(tensor):
    """Number of recorded (backward-carrying) nodes reachable from ``tensor``."""
    seen, stack, count = set(), [tensor], 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if getattr(node, "_backward", None) is not None:
            count += 1
        stack.extend(getattr(node, "_parents", ()) or ())
    return count


class TestReferenceBitIdentity:
    """Fused reference kernels replay the seed op sequence exactly."""

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_relu_exact(self, rng):
        x = rng.normal(size=(5, 6))
        assert_fused_matches_unfused_exactly(lambda a: a.relu(), [x])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_softmax_log_softmax_exact(self, rng):
        x = rng.normal(size=(6, 5)) * 3.0
        assert_fused_matches_unfused_exactly(lambda a: softmax(a), [x])
        assert_fused_matches_unfused_exactly(lambda a: log_softmax(a), [x])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_cross_entropy_exact(self, rng):
        logits = rng.normal(size=(8, 5)) * 2.0
        targets = rng.integers(0, 5, size=8)
        assert_fused_matches_unfused_exactly(
            lambda a: cross_entropy(a, targets), [logits]
        )

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_dropout_exact(self, rng):
        x = rng.normal(size=(7, 7))
        seed = int(rng.integers(0, 2**32))
        assert_fused_matches_unfused_exactly(
            lambda a: dropout(a, 0.3, np.random.default_rng(seed)), [x]
        )

    @given(ARRAYS, st.sampled_from([(8, 2), (6, 3), (2, 2)]))
    @settings(max_examples=15, deadline=None)
    def test_max_pool_exact(self, rng, geometry):
        # (2, 2) hits the w == kernel edge where the seed's window
        # expansion is a no-copy view and the pool gradient comes back
        # as a non-contiguous view — the layout, not just the values,
        # must be reproduced for downstream reductions to agree.
        size, kernel = geometry
        x = rng.normal(size=(2, 3, size, size))
        assert_fused_matches_unfused_exactly(
            lambda a: max_pool2d(a, kernel), [x]
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_mse_exact(self, rng):
        pred = rng.normal(size=(4, 6))
        target = rng.normal(size=(4, 6))
        assert_fused_matches_unfused_exactly(
            lambda a: MSELoss()(a, target), [pred]
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_linear_exact(self, rng):
        x = rng.normal(size=(5, 4))

        def apply(a):
            layer = Linear(4, 3, rng=np.random.default_rng(11))
            return layer(a)

        assert_fused_matches_unfused_exactly(apply, [x])

    @given(ARRAYS, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_batchnorm_exact(self, rng, training):
        x = rng.normal(size=(3, 4, 5, 5))
        mean = rng.normal(size=4)
        var = np.abs(rng.normal(size=4)) + 0.5

        def apply(a):
            layer = BatchNorm2d(4)
            layer.train(training)
            if not training:
                backend = active_backend()
                layer._set_buffer("running_mean", backend.asarray(mean))
                layer._set_buffer("running_var", backend.asarray(var))
            return layer(a)

        assert_fused_matches_unfused_exactly(apply, [x])

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_batchnorm_fused_relu_exact(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))

        def apply(a):
            layer = BatchNorm2d(3)
            layer.train(True)
            return layer.forward_fused(a, fuse_relu=True)

        assert_fused_matches_unfused_exactly(apply, [x])

    def test_vgg_iteration_exact_and_smaller_graph(self):
        fused = _micro_vgg_iteration("reference", True, steps=2)
        plain = _micro_vgg_iteration("reference", False, steps=2)
        assert fused[0] == plain[0], "loss trajectory moved"
        for name in plain[1]:
            assert fused[1][name].tobytes() == plain[1][name].tobytes(), name
        for name in plain[2]:
            assert fused[2][name].tobytes() == plain[2][name].tobytes(), name
        for name in plain[3]:
            assert fused[3][name].tobytes() == plain[3][name].tobytes(), name
        # The acceptance criterion: fused chains record strictly fewer
        # graph nodes than the per-primitive composition.
        assert fused[4] < plain[4], (fused[4], plain[4])


class TestFusedDifferential:
    """Fast fused kernels agree with the float64 reference, fwd + bwd."""

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_relu(self, rng):
        x = rng.normal(size=(6, 7))
        assert_fast_matches_reference(lambda a: a.relu(), [x])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_log_softmax(self, rng):
        x = rng.normal(size=(8, 5)) * 3.0
        assert_fast_matches_reference(lambda a: log_softmax(a), [x])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_cross_entropy(self, rng):
        logits = rng.normal(size=(8, 5)) * 3.0
        targets = rng.integers(0, 5, size=8)
        assert_fast_matches_reference(
            lambda a: cross_entropy(a, targets), [logits]
        )

    @given(ARRAYS, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_batchnorm_train(self, rng, fuse_relu):
        x = rng.normal(size=(3, 4, 6, 6))

        def apply(a):
            layer = BatchNorm2d(4)
            layer.train(True)
            return layer.forward_fused(a, fuse_relu=fuse_relu)

        assert_fast_matches_reference(apply, [x], rtol=5e-3, atol=5e-3)

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_batchnorm_eval(self, rng):
        x = rng.normal(size=(3, 4, 6, 6))
        mean = rng.normal(size=4)
        var = np.abs(rng.normal(size=4)) + 0.5

        def apply(a):
            layer = BatchNorm2d(4)
            layer.train(False)
            backend = active_backend()
            layer._set_buffer("running_mean", backend.asarray(mean))
            layer._set_buffer("running_var", backend.asarray(var))
            return layer(a)

        assert_fast_matches_reference(apply, [x], rtol=5e-3, atol=5e-3)

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_linear(self, rng):
        x = rng.normal(size=(5, 6))

        def apply(a):
            return Linear(6, 4, rng=np.random.default_rng(13))(a)

        assert_fast_matches_reference(apply, [x], rtol=5e-3, atol=5e-3)

    @given(ARRAYS, st.sampled_from([(8, 2), (6, 3), (2, 2)]))
    @settings(max_examples=15, deadline=None)
    def test_max_pool(self, rng, geometry):
        size, kernel = geometry
        x = rng.normal(size=(2, 3, size, size))
        assert_fast_matches_reference(lambda a: max_pool2d(a, kernel), [x])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_mse(self, rng):
        pred = rng.normal(size=(4, 6))
        target = rng.normal(size=(4, 6))
        assert_fast_matches_reference(lambda a: MSELoss()(a, target), [pred])

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_bias_add(self, rng):
        x = rng.normal(size=(2, 5, 3, 3))
        bias = rng.normal(size=5)
        with use_backend("reference"):
            backend = active_backend()
            ref = backend.bias_add(backend.asarray(x), backend.asarray(bias))
        with use_backend("fast"):
            backend = active_backend()
            fast = backend.bias_add(backend.asarray(x), backend.asarray(bias))
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, ref, rtol=RTOL, atol=ATOL)


class TestNonContiguousInputs:
    """Fused kernels accept strided views, not just fresh C-order arrays."""

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_relu_and_log_softmax_on_views(self, rng):
        base = rng.normal(size=(7, 6))
        view = base.T  # non-contiguous float64 view
        assert_fast_matches_reference(lambda a: a.relu(), [view])
        assert_fast_matches_reference(lambda a: log_softmax(a), [view])

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_batchnorm_on_view(self, rng):
        base = rng.normal(size=(6, 6, 4, 3))
        view = base.transpose(0, 3, 2, 1)  # (6, 3, 4, 6), non-contiguous

        def apply(a):
            layer = BatchNorm2d(3)
            layer.train(True)
            return layer(a)

        assert_fast_matches_reference(apply, [view], rtol=5e-3, atol=5e-3)

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_max_pool_on_view(self, rng):
        base = rng.normal(size=(2, 8, 8, 3))
        view = base.transpose(0, 3, 1, 2)  # NCHW view, non-contiguous
        assert_fast_matches_reference(lambda a: max_pool2d(a, 2), [view])


class TestFusedBatchNormGradcheck:
    """The fused analytic batchnorm gradient matches finite differences."""

    @pytest.mark.parametrize("backend_name,eps,tol", [
        ("reference", 1e-6, 1e-4),
        ("fast", 1e-2, 2e-2),
    ])
    def test_batchnorm_train_gradcheck(self, backend_name, eps, tol):
        rng = np.random.default_rng(17)
        with use_backend(backend_name):
            layer = BatchNorm2d(3)
            layer.train(True)
            x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
            assert grad_check(lambda a: layer(a), [x],
                              eps=eps, atol=tol, rtol=tol)


class TestBatchNormTrainEvalParity:
    """With running stats pinned to one batch, eval tracks train mode."""

    @pytest.mark.parametrize("backend_name", ["reference", "fast"])
    def test_parity(self, backend_name):
        rng = np.random.default_rng(23)
        x = rng.normal(size=(4, 3, 8, 8))
        with use_backend(backend_name):
            layer = BatchNorm2d(3, momentum=1.0)
            layer.train(True)
            train_out = layer(Tensor(x)).data.copy()
            layer.train(False)
            eval_out = layer(Tensor(x)).data.copy()
        # Running variance is the unbiased estimate, batch normalization
        # uses the biased one: outputs differ by ~m/(m-1) in inv_std.
        np.testing.assert_allclose(eval_out, train_out, rtol=2e-2, atol=2e-2)


class TestResidualRelease:
    """The documented leak fix: log-softmax no longer pins its softmax.

    The legacy closure kept ``soft = np.exp(out)`` alive for the whole
    graph lifetime; the fused kernel recomputes ``exp`` in backward, so
    every forward ``exp`` temporary must be collectable while the graph
    is still alive.
    """

    def _exp_refs_after_forward(self, fused):
        real_exp = np.exp
        refs = []

        def spying_exp(*args, **kwargs):
            out = real_exp(*args, **kwargs)
            if isinstance(out, np.ndarray):
                refs.append(weakref.ref(out))
            return out

        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(64, 10)), requires_grad=True)
        np.exp = spying_exp
        try:
            with use_fusion(fused):
                out = log_softmax(x)
        finally:
            np.exp = real_exp
        gc.collect()
        alive = [r for r in refs if r() is not None]
        assert refs, "np.exp was never called in forward"
        return out, alive

    def test_fused_releases_forward_exp_temporaries(self):
        out, alive = self._exp_refs_after_forward(fused=True)
        assert not alive, "fused log_softmax retained a forward exp array"
        assert out is not None  # graph kept alive through the assertion

    def test_legacy_retains_softmax_matrix(self):
        # The bug being fixed, pinned as the contrast case: the
        # per-primitive closure holds exp(out) until the node dies.
        out, alive = self._exp_refs_after_forward(fused=False)
        assert alive, "expected the legacy closure to retain exp(out)"
        del out
        gc.collect()


class TestEndToEndTrajectory:
    """Short training runs: exact on reference, within float32 on fast."""

    def test_reference_trajectory_unchanged(self):
        fused = _micro_vgg_iteration("reference", True, steps=3)
        plain = _micro_vgg_iteration("reference", False, steps=3)
        assert fused[0] == plain[0]
        for name in plain[3]:
            assert fused[3][name].tobytes() == plain[3][name].tobytes(), name

    def test_fast_trajectory_tracks_reference(self):
        fast = _micro_vgg_iteration("fast", True, steps=3)
        ref = _micro_vgg_iteration("reference", True, steps=3)
        np.testing.assert_allclose(fast[0], ref[0], rtol=5e-2, atol=5e-2)


class TestJobTableConfirmRates:
    """`repro status` surfaces per-bet speculation confirm rates."""

    def test_speculation_stats_in_points_cell(self):
        from repro.core.report import format_job_table

        jobs = [
            {"id": 1, "state": "done", "priority": 0, "kind": "search",
             "name": "s", "summary": {"stats": {
                 "total": 6, "executed": 5, "cached": 1, "failed": 0,
                 "speculated": 4, "confirmed": 3, "cancelled": 1,
                 "wasted_trials": 1}}},
            {"id": 2, "state": "done", "priority": 0, "kind": "sweep",
             "name": "w", "summary": {"stats": {
                 "total": 3, "executed": 3, "cached": 0, "failed": 0}}},
        ]
        table = format_job_table(jobs)
        assert "3/4 bets confirmed" in table
        # Non-speculative jobs keep the original cell format.
        assert "3 (3 run, 0 cached, 0 failed)" in table
