"""AD-based channel pruning (eqn. 5)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ADPruner, Trainer
from repro.nn import Adam, CrossEntropyLoss


def run_density_pass(model, loader):
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
    trainer.train_epoch(loader)
    return trainer


class TestPlanComputation:
    def test_eqn5_rounding(self, micro_vgg):
        pruner = ADPruner(micro_vgg.layer_handles())
        densities = {h.name: 0.5 for h in pruner.prunable_handles()}
        plan = pruner.compute_plan(densities)
        for handle in pruner.prunable_handles():
            assert plan[handle.name] == max(1, round(handle.out_channels * 0.5))

    def test_min_channels_floor(self, micro_vgg):
        pruner = ADPruner(micro_vgg.layer_handles(), min_channels=2)
        densities = {h.name: 0.0 for h in pruner.prunable_handles()}
        plan = pruner.compute_plan(densities)
        assert all(c == 2 for c in plan.channels.values())

    def test_invalid_min_channels(self, micro_vgg):
        with pytest.raises(ValueError):
            ADPruner(micro_vgg.layer_handles(), min_channels=0)

    def test_first_last_not_prunable(self, micro_vgg):
        pruner = ADPruner(micro_vgg.layer_handles())
        names = [h.name for h in pruner.prunable_handles()]
        assert "conv1" not in names
        assert "fc" not in names

    def test_out_of_range_density(self, micro_vgg):
        pruner = ADPruner(micro_vgg.layer_handles())
        densities = {h.name: 2.0 for h in pruner.prunable_handles()}
        with pytest.raises(ValueError):
            pruner.compute_plan(densities)


class TestApplyPlan:
    def test_masks_keep_densest_channels(self, micro_vgg, tiny_loader):
        run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        handle = pruner.prunable_handles()[0]
        scores = handle.meter.channel_density()
        pruner.apply_plan(pruner.compute_plan({h.name: 0.5 for h in pruner.prunable_handles()}))
        mask = np.asarray(handle.mask_host.channel_mask)
        kept = np.flatnonzero(mask)
        dropped = np.flatnonzero(mask == 0)
        if dropped.size and kept.size:
            assert scores[kept].min() >= scores[dropped].max() - 1e-12

    def test_active_channels_match_plan(self, micro_vgg, tiny_loader):
        run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        densities = {h.name: 0.6 for h in pruner.prunable_handles()}
        plan = pruner.prune_step(densities)
        for handle in pruner.prunable_handles():
            assert handle.active_channels() == plan[handle.name]

    def test_pruning_never_regrows(self, micro_vgg, tiny_loader):
        trainer = run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        pruner.prune_step({h.name: 0.4 for h in pruner.prunable_handles()})
        counts_after_first = {
            h.name: h.active_channels() for h in pruner.prunable_handles()
        }
        trainer.train_epoch(tiny_loader)  # refresh meters at new widths
        pruner.prune_step({h.name: 1.0 for h in pruner.prunable_handles()})
        for handle in pruner.prunable_handles():
            assert handle.active_channels() == counts_after_first[handle.name]

    def test_iterative_pruning_compounds(self, micro_vgg, tiny_loader):
        trainer = run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        trainer.train_epoch(tiny_loader)
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        handle = pruner.prunable_handles()[0]
        expected = max(1, round(max(1, round(handle.out_channels * 0.5)) * 0.5))
        assert handle.active_channels() == expected

    def test_invalid_budget_rejected(self, micro_vgg, tiny_loader):
        from repro.core import PruningPlan

        run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        handle = pruner.prunable_handles()[0]
        with pytest.raises(ValueError):
            pruner.apply_plan(PruningPlan({handle.name: handle.out_channels + 1}))

    def test_forward_still_works_after_pruning(self, micro_vgg, tiny_loader, rng):
        run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        out = micro_vgg(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 4)
        assert np.isfinite(out.data).all()

    def test_resnet_block_pruning_preserves_shapes(
        self, micro_resnet, tiny_loader, rng
    ):
        run_density_pass(micro_resnet, tiny_loader)
        pruner = ADPruner(micro_resnet.layer_handles())
        pruner.prune_step({h.name: 0.5 for h in pruner.prunable_handles()})
        out = micro_resnet(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 4)

    def test_current_plan_reflects_model(self, micro_vgg, tiny_loader):
        run_density_pass(micro_vgg, tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        before = pruner.current_plan()
        assert all(
            before[h.name] == h.out_channels for h in pruner.prunable_handles()
        )


class TestPruningPlan:
    def test_channel_counts_ordering(self):
        from repro.core import PruningPlan

        plan = PruningPlan({"a": 3, "b": 7})
        assert plan.channel_counts(["b", "a", "missing"]) == [7, 3]
        assert "a" in plan
        assert plan["b"] == 7
