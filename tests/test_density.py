"""Activation density: eqn-2 meter, monitor, saturation detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import (
    ActivationDensityMeter,
    DensityMonitor,
    SaturationDetector,
    activation_density,
)


class TestActivationDensityFunction:
    def test_paper_example(self):
        """512 neurons, 100 non-zero -> AD = 100/512 ~ 0.195."""
        acts = np.zeros(512)
        acts[:100] = 1.0
        assert np.isclose(activation_density(acts), 100 / 512)

    def test_all_zero(self):
        assert activation_density(np.zeros(10)) == 0.0

    def test_all_active(self):
        assert activation_density(np.ones(10)) == 1.0

    def test_threshold(self):
        acts = np.array([0.05, 0.5, 0.0])
        assert activation_density(acts, threshold=0.1) == pytest.approx(1 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            activation_density(np.array([]))

    @given(
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                 min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, values):
        d = activation_density(np.array(values))
        assert 0.0 <= d <= 1.0


class TestMeter:
    def test_streaming_equals_batch(self, rng):
        x = rng.normal(size=(10, 4, 3, 3)) * (rng.random((10, 4, 3, 3)) > 0.5)
        meter = ActivationDensityMeter("l")
        for row in x:
            meter.update(row[None])
        assert np.isclose(meter.density(), activation_density(x))

    def test_empty_meter_raises(self):
        with pytest.raises(RuntimeError):
            ActivationDensityMeter().density()

    def test_reset(self, rng):
        meter = ActivationDensityMeter()
        meter.update(rng.normal(size=(2, 3)))
        meter.reset()
        assert meter.count == 0

    def test_count_tracks_total(self, rng):
        meter = ActivationDensityMeter()
        meter.update(np.ones((2, 3)))
        meter.update(np.ones((1, 3)))
        assert meter.count == 9

    def test_channel_density(self):
        # Channel 0 fully active, channel 1 dead.
        acts = np.zeros((4, 2, 3, 3))
        acts[:, 0] = 1.0
        meter = ActivationDensityMeter()
        meter.update(acts)
        assert np.allclose(meter.channel_density(), [1.0, 0.0])

    def test_channel_density_accumulates(self):
        meter = ActivationDensityMeter()
        a = np.zeros((1, 2, 2, 2))
        a[:, 0] = 1.0
        meter.update(a)
        b = np.zeros((1, 2, 2, 2))
        b[:, 1] = 1.0
        meter.update(b)
        assert np.allclose(meter.channel_density(), [0.5, 0.5])

    def test_channel_count_mismatch_raises(self):
        meter = ActivationDensityMeter()
        meter.update(np.ones((1, 2, 2, 2)))
        with pytest.raises(ValueError):
            meter.update(np.ones((1, 3, 2, 2)))

    def test_channel_density_without_data_raises(self):
        with pytest.raises(RuntimeError):
            ActivationDensityMeter().channel_density()

    def test_2d_activations_feature_channels(self):
        acts = np.array([[1.0, 0.0], [1.0, 0.0]])
        meter = ActivationDensityMeter()
        meter.update(acts)
        assert np.allclose(meter.channel_density(), [1.0, 0.0])


class TestMonitor:
    def test_record_and_latest(self):
        mon = DensityMonitor(["a", "b"])
        mon.record({"a": 0.5, "b": 0.7})
        mon.record({"a": 0.6, "b": 0.8})
        assert mon.latest() == {"a": 0.6, "b": 0.8}
        assert mon.num_epochs == 2

    def test_missing_layer_raises(self):
        mon = DensityMonitor(["a", "b"])
        with pytest.raises(KeyError):
            mon.record({"a": 0.5})

    def test_out_of_range_raises(self):
        mon = DensityMonitor(["a"])
        with pytest.raises(ValueError):
            mon.record({"a": 1.5})

    def test_total_density_mean(self):
        mon = DensityMonitor(["a", "b"])
        mon.record({"a": 0.2, "b": 0.8})
        assert np.isclose(mon.total_density(), 0.5)

    def test_total_density_weighted(self):
        mon = DensityMonitor(["a", "b"])
        mon.record({"a": 0.0, "b": 1.0})
        assert np.isclose(mon.total_density({"a": 1, "b": 3}), 0.75)

    def test_weighted_zero_total_raises(self):
        mon = DensityMonitor(["a"])
        mon.record({"a": 0.5})
        with pytest.raises(ValueError):
            mon.total_density({"a": 0})

    def test_series_and_matrix(self):
        mon = DensityMonitor(["a", "b"])
        mon.record({"a": 0.1, "b": 0.2})
        mon.record({"a": 0.3, "b": 0.4})
        assert mon.series("a") == [0.1, 0.3]
        assert mon.as_matrix().shape == (2, 2)

    def test_latest_before_record_raises(self):
        with pytest.raises(RuntimeError):
            DensityMonitor(["a"]).latest()

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            DensityMonitor(["a", "a"])

    def test_reset(self):
        mon = DensityMonitor(["a"])
        mon.record({"a": 0.5})
        mon.reset()
        assert mon.num_epochs == 0


class TestSaturationDetector:
    def test_flat_series_saturates(self):
        det = SaturationDetector(window=3, tolerance=0.02)
        assert det.layer_saturated([0.5, 0.5, 0.501, 0.499])

    def test_rising_series_not_saturated(self):
        det = SaturationDetector(window=3, tolerance=0.02)
        assert not det.layer_saturated([0.1, 0.2, 0.3, 0.4])

    def test_short_series_not_saturated(self):
        det = SaturationDetector(window=5, tolerance=0.02)
        assert not det.layer_saturated([0.5, 0.5])

    def test_min_epochs_guard(self):
        det = SaturationDetector(window=2, tolerance=0.1, min_epochs=10)
        assert not det.layer_saturated([0.5] * 5)
        assert det.layer_saturated([0.5] * 10)

    def test_all_saturated(self):
        det = SaturationDetector(window=2, tolerance=0.05)
        history = {"a": [0.5, 0.5, 0.5], "b": [0.2, 0.21, 0.21]}
        assert det.all_saturated(history)

    def test_one_unsaturated_layer_blocks(self):
        det = SaturationDetector(window=2, tolerance=0.01)
        history = {"a": [0.5, 0.5], "b": [0.2, 0.4]}
        assert not det.all_saturated(history)

    def test_saturated_layers_list(self):
        det = SaturationDetector(window=2, tolerance=0.01)
        history = {"a": [0.5, 0.5], "b": [0.2, 0.4]}
        assert det.saturated_layers(history) == ["a"]

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            SaturationDetector().all_saturated({})

    @pytest.mark.parametrize("kwargs", [
        {"window": 1}, {"tolerance": 0.0}, {"min_epochs": -1},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            SaturationDetector(**kwargs)

    def test_only_recent_window_considered(self):
        det = SaturationDetector(window=3, tolerance=0.05)
        # Early movement, recent plateau -> saturated.
        assert det.layer_saturated([0.1, 0.9, 0.5, 0.5, 0.5])
