"""Backend registry, config threading, and cache-key stability.

The cache-key pins are load-bearing: PR-5 (per-layer overrides) and
PR-6 (the master service) recorded results under these exact hashes,
so any change to ``ExperimentConfig.to_dict()`` that shifts them
orphans every existing ``.repro-cache`` entry.  A backend-less config
must keep hashing exactly as it did before backends existed; only an
explicit non-default ``backend`` may (and must) change the key.
"""

import numpy as np
import pytest

from repro.api import experiments
from repro.api.config import ExperimentConfig
from repro.backend import (DEFAULT_BACKEND, ArrayBackend, active_backend,
                           available_backends, get_backend, register_backend,
                           set_active_backend, use_backend)

# sha256(canonical_json(to_dict())) recorded before this PR introduced
# the backend field — the regression contract for historical caches.
PINNED_KEYS = {
    "default": ("a97431af07fa27dbe6f8fd28a4054c51"
              "ac4c750451fe5bcbbe5ac63641db8933"),
    "vgg19-cifar10-quant": ("8453ffc1e13ae742a521418ef21aec20"
                          "4c5dd1beb1db3afcac13d26f271067f4"),
    "vgg11-micro-smoke": ("21ef20295fc964c65ca95a2cc6e763ae"
                        "23e36ed3fd7927ad6a783b0924c8ec43"),
    "search-smoke-bits": ("c4ad9161b53bf289b00ea6e89602d034"
                        "1376bb2df2ef00e5e8803554a6580293"),
}


class TestRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ("fast", "reference")

    def test_default_is_reference(self):
        assert DEFAULT_BACKEND == "reference"
        assert active_backend().name == "reference"

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_register_rejects_reserved_name(self):
        class Bad(ArrayBackend):
            name = "base"

        with pytest.raises(ValueError):
            register_backend(Bad())

    def test_use_backend_restores_on_exit(self):
        assert active_backend().name == "reference"
        with use_backend("fast"):
            assert active_backend().name == "fast"
            with use_backend("reference"):
                assert active_backend().name == "reference"
            assert active_backend().name == "fast"
        assert active_backend().name == "reference"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("fast"):
                raise RuntimeError("boom")
        assert active_backend().name == "reference"

    def test_set_active_backend(self):
        set_active_backend("fast")
        try:
            assert active_backend().name == "fast"
        finally:
            set_active_backend("reference")

    def test_dtype_policy(self):
        assert get_backend("reference").dtype == np.float64
        assert get_backend("fast").dtype == np.float32

    def test_array_creation_follows_backend(self):
        with use_backend("fast"):
            backend = active_backend()
            assert backend.zeros((2, 3)).dtype == np.float32
            assert backend.ones(4).dtype == np.float32
            assert backend.asarray([1, 2, 3]).dtype == np.float32


class TestConfigThreading:
    def test_default_backend_field(self):
        assert ExperimentConfig().backend == "reference"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig(backend="cuda")

    def test_default_backend_omitted_from_dict(self):
        assert "backend" not in ExperimentConfig().to_dict()

    def test_explicit_backend_serialized_and_round_trips(self):
        config = ExperimentConfig(backend="fast")
        data = config.to_dict()
        assert data["backend"] == "fast"
        restored = ExperimentConfig.from_dict(data)
        assert restored.backend == "fast"
        assert restored.cache_key() == config.cache_key()

    def test_evolve_backend(self):
        config = experiments.get_config("vgg11-micro-smoke")
        assert config.evolve(backend="fast").backend == "fast"

    def test_build_context_activates_backend(self):
        from repro.api.context import build_context

        config = experiments.get_config("vgg11-micro-smoke")
        build_context(config.evolve(backend="fast"))
        try:
            assert active_backend().name == "fast"
        finally:
            set_active_backend("reference")


class TestCacheKeyRegression:
    def test_default_config_key_unchanged(self):
        assert ExperimentConfig().cache_key() == PINNED_KEYS["default"]

    @pytest.mark.parametrize("preset", ["vgg19-cifar10-quant",
                                        "vgg11-micro-smoke"])
    def test_preset_keys_unchanged(self, preset):
        assert experiments.get_config(preset).cache_key() == \
            PINNED_KEYS[preset]

    def test_search_preset_key_unchanged(self):
        assert experiments.get_search("search-smoke-bits").cache_key() == \
            PINNED_KEYS["search-smoke-bits"]

    def test_fast_backend_changes_the_key(self):
        config = experiments.get_config("vgg11-micro-smoke")
        assert config.evolve(backend="fast").cache_key() != \
            config.cache_key()

    def test_explicit_reference_backend_keeps_the_key(self):
        # `backend="reference"` spelled out must hash like the field was
        # never there, or half the historical cache goes stale.
        config = experiments.get_config("vgg11-micro-smoke")
        assert config.evolve(backend="reference").cache_key() == \
            PINNED_KEYS["vgg11-micro-smoke"]


class TestApplyBackend:
    def test_run_kind(self):
        config = experiments.get_config("vgg11-micro-smoke")
        assert experiments.apply_backend("run", config, "fast").backend == \
            "fast"

    def test_none_is_identity(self):
        config = experiments.get_config("vgg11-micro-smoke")
        assert experiments.apply_backend("run", config, None) is config

    def test_sweep_kind_pins_every_point(self):
        from repro.orchestration import expand

        sweep = experiments.get_sweep("smoke-seeds")
        pinned = experiments.apply_backend("sweep", sweep, "fast")
        points = expand(pinned)
        assert points and all(p.config.backend == "fast" for p in points)

    def test_search_kind_pins_the_base(self):
        search = experiments.get_search("search-smoke-bits")
        pinned = experiments.apply_backend("search", search, "fast")
        assert pinned.base.backend == "fast"
        assert not pinned.preset

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            experiments.apply_backend("job", None, "fast")


class TestServiceSpecBackend:
    def test_preset_spec_with_backend(self):
        from repro.service.master import resolve_spec

        kind, name, payload = resolve_spec(
            {"preset": "vgg11-micro-smoke", "backend": "fast"}
        )
        assert kind == "run" and payload.backend == "fast"

    def test_inline_config_spec_with_backend(self):
        from repro.service.master import resolve_spec

        config = experiments.get_config("vgg11-micro-smoke").to_dict()
        kind, name, payload = resolve_spec(
            {"config": config, "backend": "fast"}
        )
        assert kind == "run" and payload.backend == "fast"

    def test_spec_without_backend_stays_reference(self):
        from repro.service.master import resolve_spec

        _, _, payload = resolve_spec({"preset": "vgg11-micro-smoke"})
        assert payload.backend == "reference"


class TestCacheRecordsBackend:
    def test_store_stamps_producing_backend(self, tmp_path):
        from repro.orchestration import ResultCache

        cache = ResultCache(tmp_path)
        config = experiments.get_config("vgg11-micro-smoke")
        cache.store(config, {"report": {"rows": []}})
        entry = cache.read_entry(config.cache_key())
        assert entry["backend"] == "reference"

        fast = config.evolve(backend="fast")
        cache.store(fast, {"report": {"rows": []}})
        assert cache.read_entry(fast.cache_key())["backend"] == "fast"
