"""The paper's five numbered equations, locked to worked examples.

A reproduction lives or dies by its equations; each test here pins one
of them to hand-computed values so refactors cannot silently change the
math.
"""

import numpy as np
import pytest

from repro.density import activation_density
from repro.energy import conv_mac_ops, conv_mem_accesses, mac_energy_pj
from repro.quant import dequantize, quantize


class TestEqn1Quantization:
    """x_q = round((x - x_min) * (2^k - 1)/(x_max - x_min))."""

    def test_hand_computed_codes(self):
        x = np.array([0.0, 0.3, 0.5, 1.0])
        # k=3: 7 levels over [0,1] -> codes round(x*7).
        assert np.array_equal(quantize(x, 3), [0, 2, 4, 7])

    def test_negative_range(self):
        x = np.array([-1.0, 0.0, 1.0])
        # k=2: codes round((x+1)*1.5) = [0, 2, 3].
        assert np.array_equal(quantize(x, 2), [0, 2, 3])

    def test_dequantized_grid_spacing(self):
        values = dequantize(np.arange(4), 2, 0.0, 3.0)
        assert np.allclose(np.diff(values), 1.0)


class TestEqn2ActivationDensity:
    """AD = #nonzero / #total."""

    def test_paper_worked_example(self):
        """'a layer with 512 neurons and 100 neurons yielding non-zero
        output, AD will be 100/512 = 0.195'."""
        acts = np.zeros(512)
        acts[:100] = np.abs(np.random.default_rng(0).normal(size=100)) + 0.1
        assert activation_density(acts) == pytest.approx(100 / 512)
        assert round(activation_density(acts), 3) == 0.195


class TestEqn3BitWidthUpdate:
    """k_l = round(k_l_initial * AD_l)."""

    def test_paper_worked_example(self):
        """'AD_l values {0.9, 0.3, 0.5} and initial bit-widths
        {16, 10, 8} ... yield {14-bit, 3-bit, 4-bit}'."""
        ads = [0.9, 0.3, 0.5]
        bits = [16, 10, 8]
        updated = [round(k * ad) for k, ad in zip(bits, ads)]
        assert updated == [14, 3, 4]

    def test_via_adquantizer(self, micro_vgg):
        from repro.core import ADQuantizer, QuantizationSchedule, Trainer
        from repro.nn import Adam, CrossEntropyLoss

        trainer = Trainer(
            micro_vgg, Adam(micro_vgg.parameters(), lr=1e-3), CrossEntropyLoss()
        )
        quantizer = ADQuantizer(trainer, QuantizationSchedule())
        quantizer.apply_plan(quantizer.initial_plan())
        names = micro_vgg.layer_handles().names()
        densities = dict.fromkeys(names, 0.5)
        plan = quantizer.update_plan(densities)
        for spec in plan:
            assert spec.bits == (16 if spec.frozen else 8)


class TestEqn4TrainingComplexity:
    """TC = sum_i (MAC reduction_i)^-1 * #epochs_i."""

    def test_hand_computed(self):
        from repro.core import TrainingComplexity

        tc = TrainingComplexity(baseline_epochs=210)
        tc.add_iteration(1.0, 100)   # iteration 1: full precision
        tc.add_iteration(5.0, 70)    # iteration 2: 5x cheaper MACs
        assert tc.raw() == pytest.approx(100 + 14)
        assert tc.relative() == pytest.approx(114 / 210)


class TestEqn5ChannelPruning:
    """C_l = round(C_l_initial * AD_l)."""

    def test_hand_computed(self):
        assert round(64 * 0.3) == 19  # the paper's VGG19 conv2: 64 -> 19

    def test_via_pruner(self, micro_vgg, tiny_loader):
        from repro.core import ADPruner, Trainer
        from repro.nn import Adam, CrossEntropyLoss

        trainer = Trainer(
            micro_vgg, Adam(micro_vgg.parameters(), lr=1e-3), CrossEntropyLoss()
        )
        trainer.train_epoch(tiny_loader)
        pruner = ADPruner(micro_vgg.layer_handles())
        densities = {h.name: 0.75 for h in pruner.prunable_handles()}
        plan = pruner.compute_plan(densities)
        for handle in pruner.prunable_handles():
            assert plan[handle.name] == max(1, round(handle.out_channels * 0.75))


class TestSectionIVAFormulas:
    """N_Mem, N_MAC and E_l from §IV-A, on the paper's VGG19 conv2."""

    def test_vgg19_conv2_counts(self):
        # conv2: 3x3, 64 -> 64 channels, 32x32 feature maps.
        n_mem = conv_mem_accesses(32, 64, 64, 3)
        n_mac = conv_mac_ops(32, 64, 64, 3)
        assert n_mem == 32 * 32 * 64 + 9 * 64 * 64
        assert n_mac == 32 * 32 * 64 * 9 * 64

    def test_energy_composition(self):
        # E_l at 4 bits: N_Mem * 10 pJ + N_MAC * 0.4875 pJ.
        from repro.energy import AnalyticalEnergyModel, LayerProfile

        profile = LayerProfile("conv2", "conv", 64, 64, 3, 32, 32, 4)
        model = AnalyticalEnergyModel()
        expected = (32 * 32 * 64 + 9 * 64 * 64) * 10.0 + (
            32 * 32 * 64 * 9 * 64
        ) * mac_energy_pj(4)
        assert model.layer_energy_pj(profile) == pytest.approx(expected)
