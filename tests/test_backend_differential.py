"""Differential tests: the fast float32 backend against the reference.

Every backend-dispatched operation runs forward *and* backward on both
backends from identical float64 inputs; the fast path must agree with
the float64 reference within float32 round-off.  The fast backend is
additionally held to the same finite-difference gradient contract as
the reference (``grad_check`` with float32-sized tolerances), so a
fused kernel whose analytic gradient silently drifts fails here, not
in a days-later accuracy regression.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.autograd.conv import (avg_pool2d, conv2d, global_avg_pool2d,
                                 max_pool2d)
from repro.autograd.functional import cross_entropy, dropout, softmax
from repro.autograd.gradcheck import grad_check
from repro.backend import use_backend
from repro.quant.fakequant import FakeQuantize, STEQuantFunction

# float32 has ~7 significant digits; sums over the small test tensors
# lose a couple more, so 1e-3 relative is the honest contract.
RTOL = 1e-3
ATOL = 1e-3

ARRAYS = st.integers(min_value=0, max_value=2**31 - 1).map(
    lambda seed: np.random.default_rng(seed)
)


def _run_on(backend_name, func, arrays):
    """``(output, grads)`` of ``func(*arrays)`` executed on one backend."""
    with use_backend(backend_name):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        out = func(*tensors)
        out.sum().backward()
        return out.data.copy(), [t.grad.copy() for t in tensors]


def assert_backends_agree(func, arrays, rtol=RTOL, atol=ATOL):
    ref_out, ref_grads = _run_on("reference", func, arrays)
    fast_out, fast_grads = _run_on("fast", func, arrays)
    assert ref_out.dtype == np.float64
    assert fast_out.dtype == np.float32
    np.testing.assert_allclose(fast_out, ref_out, rtol=rtol, atol=atol)
    for index, (fast, ref) in enumerate(zip(fast_grads, ref_grads)):
        np.testing.assert_allclose(
            fast, ref, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch on input {index}",
        )


class TestElementwiseDifferential:
    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_arithmetic_chain(self, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(4, 5)) + 2.0
        assert_backends_agree(lambda x, y: (x * y + x - y) / (y * y + 1.0),
                              [a, b])

    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_broadcasting(self, rng):
        a = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(5,))
        assert_backends_agree(lambda x, y: x * y + y, [a, b])

    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_nonlinearities(self, rng):
        a = rng.normal(size=(6, 7))
        assert_backends_agree(
            lambda x: x.relu() + x.tanh() + x.sigmoid(), [a]
        )

    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_exp_log_sqrt(self, rng):
        a = np.abs(rng.normal(size=(5, 5))) + 0.5
        assert_backends_agree(lambda x: (x.log() + x.sqrt()).exp(), [a],
                              rtol=5e-3, atol=5e-3)

    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_reductions(self, rng):
        a = rng.normal(size=(4, 6))
        assert_backends_agree(
            lambda x: x.sum(axis=1) + x.mean(axis=0).sum() + x.max(axis=1),
            [a],
        )

    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_shape_ops(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert_backends_agree(
            lambda x: x.reshape(6, 4).transpose(1, 0)[1:3], [a]
        )


class TestMatmulDifferential:
    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_matmul_2d(self, rng):
        a = rng.normal(size=(6, 8))
        b = rng.normal(size=(8, 5))
        assert_backends_agree(lambda x, y: x @ y, [a, b])

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_matmul_batched(self, rng):
        a = rng.normal(size=(3, 4, 6))
        b = rng.normal(size=(3, 6, 5))
        assert_backends_agree(lambda x, y: x @ y, [a, b])


class TestConvPoolDifferential:
    @given(ARRAYS,
           st.sampled_from([(3, 1, 1), (3, 2, 1), (2, 2, 0), (5, 1, 2)]))
    @settings(max_examples=15, deadline=None)
    def test_conv2d(self, rng, ksp):
        kernel, stride, padding = ksp
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, kernel, kernel)) * 0.5
        b = rng.normal(size=(4,))
        assert_backends_agree(
            lambda xx, ww, bb: conv2d(xx, ww, bb, stride=stride,
                                      padding=padding),
            [x, w, b], rtol=5e-3, atol=5e-3,
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_pooling(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        assert_backends_agree(
            lambda xx: max_pool2d(xx, 2) + avg_pool2d(xx, 2), [x]
        )
        assert_backends_agree(lambda xx: global_avg_pool2d(xx), [x])


class TestFunctionalDifferential:
    @given(ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_softmax_cross_entropy(self, rng):
        logits = rng.normal(size=(8, 5)) * 3.0
        targets = rng.integers(0, 5, size=8)
        assert_backends_agree(lambda x: softmax(x), [logits])
        assert_backends_agree(lambda x: cross_entropy(x, targets), [logits])

    @given(ARRAYS)
    @settings(max_examples=10, deadline=None)
    def test_dropout_identical_mask(self, rng):
        # Both backends must draw the identical keep mask from the same
        # seed: the float64 rng stream is shared, only storage narrows.
        x = rng.normal(size=(16, 16))
        seed = int(rng.integers(0, 2**32))
        assert_backends_agree(
            lambda xx: dropout(xx, 0.4, np.random.default_rng(seed)), [x]
        )


class TestFakeQuantDifferential:
    @given(ARRAYS, st.integers(min_value=2, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_ste_fake_quant(self, rng, bits):
        x = rng.normal(size=(6, 6)) * 4.0
        fq = FakeQuantize(bits)
        assert_backends_agree(
            lambda xx: STEQuantFunction(xx, fq._quantizer), [x]
        )

    @given(ARRAYS, st.integers(min_value=2, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_fake_quant_array(self, rng, bits):
        x = rng.normal(size=(5, 7)) * 2.0
        fq = FakeQuantize(bits)
        with use_backend("reference"):
            ref = fq.fake_quant_array(x)
        with use_backend("fast"):
            fast = fq.fake_quant_array(x)
        assert ref.dtype == np.float64 and fast.dtype == np.float32
        np.testing.assert_allclose(fast, ref, rtol=RTOL, atol=ATOL)

    def test_fake_quant_degenerate_constant_input(self):
        fq = FakeQuantize(4)
        x = np.full((3, 3), 2.5)
        with use_backend("fast"):
            out = fq.fake_quant_array(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, 2.5)


class TestOptimizerDifferential:
    def _updates(self, backend_name, optimizer_cls, steps=5, **kwargs):
        from repro.nn.module import Parameter

        rng = np.random.default_rng(7)
        data = rng.normal(size=(4, 3))
        grads = [rng.normal(size=(4, 3)) for _ in range(steps)]
        with use_backend(backend_name):
            param = Parameter(data)
            optimizer = optimizer_cls([param], **kwargs)
            for grad in grads:
                param.grad = np.asarray(grad, dtype=param.data.dtype)
                optimizer.step()
            return param.data.copy()

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.1},
        {"lr": 0.1, "momentum": 0.9},
        {"lr": 0.1, "momentum": 0.9, "weight_decay": 1e-3},
    ])
    def test_sgd(self, kwargs):
        from repro.nn.optim import SGD

        ref = self._updates("reference", SGD, **kwargs)
        fast = self._updates("fast", SGD, **kwargs)
        assert ref.dtype == np.float64 and fast.dtype == np.float32
        np.testing.assert_allclose(fast, ref, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("kwargs", [
        {"lr": 1e-3},
        {"lr": 1e-3, "weight_decay": 1e-4},
    ])
    def test_adam(self, kwargs):
        from repro.nn.optim import Adam

        ref = self._updates("reference", Adam, **kwargs)
        fast = self._updates("fast", Adam, **kwargs)
        np.testing.assert_allclose(fast, ref, rtol=1e-4, atol=1e-5)


class TestFastBackendGradcheck:
    """The fast path honours the tape's finite-difference contract.

    float32 central differences are noisy, so eps/tolerances are widened
    accordingly; the point is catching *wrong* fused gradients (orders
    of magnitude off), not re-measuring float32 round-off.
    """

    def test_conv2d_gradcheck_fast(self):
        rng = np.random.default_rng(3)
        with use_backend("fast"):
            x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
            w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.5,
                       requires_grad=True)
            assert grad_check(
                lambda a, b: conv2d(a, b, stride=1, padding=1), [x, w],
                eps=1e-2, atol=2e-2, rtol=2e-2,
            )

    def test_matmul_gradcheck_fast(self):
        rng = np.random.default_rng(4)
        with use_backend("fast"):
            a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
            b = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
            assert grad_check(lambda x, y: x @ y, [a, b],
                              eps=1e-2, atol=2e-2, rtol=2e-2)

    def test_pooling_gradcheck_fast(self):
        rng = np.random.default_rng(5)
        with use_backend("fast"):
            x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
            assert grad_check(lambda a: avg_pool2d(a, 2), [x],
                              eps=1e-2, atol=2e-2, rtol=2e-2)
