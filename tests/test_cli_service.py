"""CLI surface of the experiment service plus the version/interrupt
plumbing: ``repro --version``, the graceful SIGINT/SIGTERM path of
``repro sweep``, and the master's client verbs driven through
:func:`repro.cli.main` against a live in-process master."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.api import experiments
from repro.cli import EXIT_INTERRUPTED, _InterruptFlag, main
from repro.orchestration import SweepConfig
from repro.service import protocol
from repro.service.client import MasterClient, MasterError
from repro.service.master import Master

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class TestVersion:
    def test_version_flag_prints_package_and_protocol(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert f"protocol {protocol.PROTOCOL_VERSION}" in out
        assert out.startswith("repro ")


class TestInterruptFlag:
    def test_first_signal_sets_flag_second_aborts(self, capsys):
        flag = _InterruptFlag()
        assert not flag()
        flag.handle(signal.SIGINT, None)
        assert flag()
        assert "finishing in-flight work" in capsys.readouterr().err
        with pytest.raises(KeyboardInterrupt):
            flag.handle(signal.SIGINT, None)


class TestSweepSigint:
    def test_sigint_finalizes_out_file_and_exits_130(self, tmp_path):
        out_path = tmp_path / "partial.json"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep",
                "--preset", "vgg11-micro-smoke",
                "--seeds", ",".join(str(s) for s in range(12)),
                "--no-cache", "--out", str(out_path),
            ],
            cwd=tmp_path,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # Wait until at least one point landed in the streamed --out
            # file — by then the signal handlers are long installed and
            # the sweep still has many points to go.
            deadline = time.time() + 60
            while time.time() < deadline:
                try:
                    payload = json.loads(out_path.read_text())
                except (OSError, ValueError):
                    payload = None
                if payload and any(p["status"] == "ok"
                                   for p in payload["points"]):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("no point ever completed")
            process.send_signal(signal.SIGINT)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == EXIT_INTERRUPTED, (stdout, stderr)
        assert "sweep interrupted" in stderr
        payload = json.loads(out_path.read_text())
        statuses = [p["status"] for p in payload["points"]]
        assert len(statuses) == 12
        assert statuses.count("ok") >= 1
        assert statuses.count("pending") >= 1, statuses


SLOW_SEED = 100


def fake_execute(task):
    if task["config"]["model"]["seed"] >= SLOW_SEED:
        time.sleep(0.25)
    return {
        "index": task["index"],
        "status": "ok",
        "payload": {"report": {"fake": True}, "artifacts": {}},
        "duration": 0.0,
    }


@pytest.fixture
def live_master(tmp_path):
    socket_path = tmp_path / "master.sock"
    master = Master(
        socket_path=socket_path, jobs=1,
        cache_dir=tmp_path / "cache", state_path=tmp_path / "state.json",
        execute=fake_execute,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(master.serve()), daemon=True
    )
    thread.start()
    deadline = time.time() + 10
    while not socket_path.exists():
        assert time.time() < deadline, "master never bound its socket"
        time.sleep(0.01)
    yield socket_path
    try:
        with MasterClient(socket_path) as client:
            client.shutdown()
    except (MasterError, OSError):
        pass
    thread.join(timeout=15)
    assert not thread.is_alive()


def sweep_config_file(tmp_path, name="cli", seeds=(0, 1)):
    sweep = SweepConfig(
        name=name,
        base=experiments.get_config("vgg11-micro-smoke"),
        seeds=tuple(seeds),
    )
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(sweep.to_dict()))
    return path


class TestServiceVerbs:
    def test_submit_status_watch_round_trip(self, live_master, tmp_path,
                                            capsys):
        config = sweep_config_file(tmp_path)
        socket = str(live_master)
        assert main(["submit", "--socket", socket,
                     "--config", str(config)]) == 0
        out = capsys.readouterr().out
        assert "job 1 submitted (sweep cli, priority 0)" in out
        assert main(["watch", "1", "--socket", socket, "--quiet"]) == 0
        assert "job 1: done — 2 point(s)" in capsys.readouterr().out
        assert main(["status", "--socket", socket]) == 0
        out = capsys.readouterr().out
        assert f"master: repro {repro.__version__}" in out
        assert "done" in out and "cli" in out

    def test_quiet_submit_prints_bare_id_for_scripting(
            self, live_master, tmp_path, capsys):
        config = sweep_config_file(tmp_path)
        assert main(["submit", "--socket", str(live_master),
                     "--config", str(config), "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_cancel_queued_job(self, live_master, tmp_path, capsys):
        socket = str(live_master)
        slow = sweep_config_file(tmp_path, "slow",
                                 seeds=(SLOW_SEED, SLOW_SEED + 1))
        queued = sweep_config_file(tmp_path, "queued", seeds=(7,))
        assert main(["submit", "--socket", socket, "--config",
                     str(slow), "--quiet"]) == 0
        assert main(["submit", "--socket", socket, "--config",
                     str(queued), "--quiet"]) == 0
        assert main(["cancel", "2", "--socket", socket]) == 0
        assert "job 2: cancelled" in capsys.readouterr().out
        assert main(["watch", "2", "--socket", socket, "--quiet"]) == 1
        assert "cancelled" in capsys.readouterr().out

    def test_status_json_is_machine_readable(self, live_master, capsys):
        assert main(["status", "--socket", str(live_master),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["master"]["protocol"] == protocol.PROTOCOL_VERSION
        assert payload["jobs"] == []

    def test_no_master_is_clean_error(self, tmp_path, capsys):
        code = main(["status", "--socket", str(tmp_path / "nope.sock")])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: error" in err
        assert "repro master" in err  # points at how to start one

    def test_shutdown_stops_master(self, live_master, capsys):
        assert main(["shutdown", "--socket", str(live_master)]) == 0
        assert "master stopping" in capsys.readouterr().out
        deadline = time.time() + 10
        while live_master.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert not live_master.exists()
