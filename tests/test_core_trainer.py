"""Trainer: loss decrease, density collection, evaluation."""

import numpy as np
import pytest

from repro.core import Trainer
from repro.data import ArrayDataset, DataLoader
from repro.nn import Adam, CrossEntropyLoss


def make_trainer(model, lr=3e-3):
    return Trainer(model, Adam(model.parameters(), lr=lr), CrossEntropyLoss())


class TestTrainEpoch:
    def test_stats_fields(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        stats = trainer.train_epoch(tiny_loader)
        assert stats.epoch == 0
        assert stats.loss > 0
        assert 0.0 <= stats.accuracy <= 1.0
        assert set(stats.densities) == set(micro_vgg.layer_handles().names())

    def test_loss_decreases_over_epochs(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        losses = [trainer.train_epoch(tiny_loader).loss for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_density_recorded_per_epoch(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        trainer.fit(tiny_loader, epochs=3)
        assert trainer.monitor.num_epochs == 3

    def test_densities_in_unit_interval(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        stats = trainer.train_epoch(tiny_loader)
        assert all(0.0 <= d <= 1.0 for d in stats.densities.values())

    def test_collect_density_disabled(self, micro_vgg, tiny_loader):
        trainer = Trainer(
            micro_vgg,
            Adam(micro_vgg.parameters(), lr=1e-3),
            CrossEntropyLoss(),
            collect_density=False,
        )
        stats = trainer.train_epoch(tiny_loader)
        assert stats.densities == {}
        assert trainer.monitor.num_epochs == 0

    def test_ctx_disabled_after_epoch(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        trainer.train_epoch(tiny_loader)
        assert not micro_vgg.ctx.enabled

    def test_epochs_counter(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        trainer.fit(tiny_loader, epochs=2)
        assert trainer.epochs_completed == 2
        assert len(trainer.history) == 2

    def test_empty_loader_raises(self, micro_vgg, tiny_dataset):
        trainer = make_trainer(micro_vgg)
        empty = DataLoader(
            ArrayDataset(np.zeros((2, 3, 8, 8)), np.zeros(2, dtype=int)),
            batch_size=5,
            drop_last=True,
        )
        with pytest.raises(RuntimeError):
            trainer.train_epoch(empty)


class TestEvaluate:
    def test_accuracy_range_and_restores_train_mode(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        acc = trainer.evaluate(tiny_loader)
        assert 0.0 <= acc <= 1.0
        assert micro_vgg.training

    def test_learns_tiny_dataset(self, micro_vgg, tiny_loader, tiny_dataset, rng):
        trainer = make_trainer(micro_vgg, lr=5e-3)
        trainer.fit(tiny_loader, epochs=25)
        eval_loader = DataLoader(tiny_dataset, batch_size=16)
        assert trainer.evaluate(eval_loader) >= 0.75


class TestMeasureDensity:
    def test_returns_all_layers(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        densities = trainer.measure_density(tiny_loader)
        assert set(densities) == set(micro_vgg.layer_handles().names())

    def test_max_batches_limits_count(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        trainer.measure_density(tiny_loader, max_batches=1)
        counts = trainer.layer_activation_counts()
        first_conv = micro_vgg.layer_handles()[0]
        # One batch of 8 through a 8x8 conv with padding -> 8*C*64 values.
        assert counts[first_conv.name] == 8 * first_conv.out_channels * 64

    def test_does_not_touch_monitor(self, micro_vgg, tiny_loader):
        trainer = make_trainer(micro_vgg)
        trainer.measure_density(tiny_loader)
        assert trainer.monitor.num_epochs == 0
