"""End-to-end: the fast backend through the full experiment stack.

The differential tests pin per-op agreement; these pin the *product*:
a whole quantization experiment on the fast backend reproduces the
reference run's trajectory, and every user-facing entry point (`run`,
`sweep`, `search`, the service spec) accepts ``--backend fast`` and
threads it to the training loop.
"""

import json

import numpy as np
import pytest

from repro.api import experiments
from repro.backend import active_backend
from repro.cli import main


def _smoke_config(backend):
    return experiments.get_config("vgg11-micro-smoke").evolve(
        backend=backend,
        quant={"max_iterations": 2, "max_epochs_per_iteration": 1,
               "min_epochs_per_iteration": 1},
    )


class TestExperimentParity:
    def test_fast_reproduces_reference_trajectory(self):
        reports = {}
        for backend in ("reference", "fast"):
            experiment = experiments.Experiment(_smoke_config(backend))
            reports[backend] = experiment.run()
            # The model must actually live in the backend's dtype.
            dtype = (np.float64 if backend == "reference" else np.float32)
            for value in experiment.context.model.state_dict().values():
                assert value.dtype == dtype
        ref_rows = reports["reference"].rows
        fast_rows = reports["fast"].rows
        assert len(ref_rows) == len(fast_rows)
        for ref, fast in zip(ref_rows, fast_rows):
            # Identical data, init, and schedule: float32 round-off may
            # flip an occasional argmax on the 20-sample micro set, but
            # the trajectory must track the reference closely.
            assert abs(fast.test_accuracy - ref.test_accuracy) <= 0.15
            assert fast.total_ad == pytest.approx(ref.total_ad, abs=0.02)
            assert fast.bit_widths == ref.bit_widths

    def test_run_restores_requested_backend_each_time(self):
        # A warm service context re-runs experiments back to back; each
        # run must re-activate its own config's backend.
        experiments.Experiment(_smoke_config("fast")).run()
        assert active_backend().name == "fast"
        experiments.Experiment(_smoke_config("reference")).run()
        assert active_backend().name == "reference"


class TestCLIBackend:
    def test_run_backend_fast(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--backend", "fast", "--max-iterations", "1",
                     "--max-epochs", "1", "--min-epochs", "1",
                     "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["backend"] == "fast"
        assert payload["report"]["rows"]

    def test_run_backend_fast_cached_separately(self, tmp_path, capsys):
        args = ["run", "--preset", "vgg11-micro-smoke", "--quiet",
                "--max-iterations", "1", "--max-epochs", "1",
                "--min-epochs", "1", "--cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args + ["--backend", "fast"]) == 0
        # A reference run of the same schedule must miss the fast entry.
        assert main(args) == 0
        from repro.orchestration import ResultCache

        assert ResultCache(tmp_path / "cache").entry_count() == 2

    def test_sweep_backend_fast(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--seeds", "0,1", "--backend", "fast", "--quiet",
                     "--no-cache", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["points"]) == 2
        for point in payload["points"]:
            assert point["config"]["backend"] == "fast"
            assert point["status"] == "ok"

    def test_search_backend_fast_headless(self, tmp_path):
        out = tmp_path / "search.json"
        code = main(["search", "--preset", "search-smoke-bits",
                     "--backend", "fast", "--quiet", "--no-cache",
                     "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["search"]["best"] is not None
        for point in payload["points"]:
            assert point["config"]["backend"] == "fast"

    def test_show_backend_fast(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke",
                     "--backend", "fast"]) == 0
        assert json.loads(capsys.readouterr().out)["backend"] == "fast"

    def test_run_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "vgg11-micro-smoke",
                  "--backend", "cuda"])
