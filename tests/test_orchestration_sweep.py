"""Sweep configs: axis expansion, modes, shorthands, round-trips."""

import pytest

from repro.api import experiments
from repro.orchestration import SweepAxis, SweepConfig, expand


def base():
    return experiments.get_config("vgg11-micro-smoke")


class TestSweepAxis:
    def test_dotted_path_builds_nested_override(self):
        axis = SweepAxis("quant.initial_bits", (8, 16))
        assert axis.override_for(8) == {"quant": {"initial_bits": 8}}

    def test_seed_path_sets_both_seeds(self):
        axis = SweepAxis("seed", (7,))
        assert axis.override_for(7) == {
            "model": {"seed": 7},
            "data": {"seed": 7},
        }

    def test_top_level_path(self):
        assert SweepAxis("lr", (0.1,)).override_for(0.1) == {"lr": 0.1}

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            SweepAxis("lr", ())


class TestExpansion:
    def test_grid_is_cartesian_product(self):
        sweep = SweepConfig(
            name="grid",
            base=base(),
            axes=(
                SweepAxis("quant.initial_bits", (8, 16)),
                SweepAxis("seed", (0, 1)),
            ),
        )
        points = expand(sweep)
        assert len(points) == 4
        combos = {
            (p.config.quant.initial_bits, p.config.model.seed) for p in points
        }
        assert combos == {(8, 0), (8, 1), (16, 0), (16, 1)}

    def test_zip_pairs_axes_by_index(self):
        sweep = SweepConfig(
            name="zip",
            base=base(),
            mode="zip",
            axes=(
                SweepAxis("quant.initial_bits", (8, 16)),
                SweepAxis("seed", (0, 1)),
            ),
        )
        points = expand(sweep)
        assert [(p.config.quant.initial_bits, p.config.model.seed) for p in points] \
            == [(8, 0), (16, 1)]

    def test_zip_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="equal-length"):
            SweepConfig(
                name="bad",
                base=base(),
                mode="zip",
                axes=(
                    SweepAxis("quant.initial_bits", (8, 16, 32)),
                    SweepAxis("seed", (0, 1)),
                ),
            )

    def test_seeds_shorthand_sets_both_seeds(self):
        sweep = SweepConfig(name="seeds", base=base(), seeds=(3, 4))
        points = expand(sweep)
        assert [(p.config.model.seed, p.config.data.seed) for p in points] \
            == [(3, 3), (4, 4)]
        assert points[0].label == "vgg11-micro-smoke[seed=3]"

    def test_presets_source_expands_each_registry_config(self):
        sweep = SweepConfig(
            name="tables",
            presets=("vgg11-micro-smoke", "quickstart-vgg11"),
        )
        points = expand(sweep)
        assert [p.config.name for p in points] \
            == ["vgg11-micro-smoke", "quickstart-vgg11"]

    def test_presets_cross_axes(self):
        sweep = SweepConfig(
            name="tables-seeds",
            presets=("vgg11-micro-smoke", "quickstart-vgg11"),
            seeds=(0, 1),
        )
        assert len(expand(sweep)) == 4

    def test_axis_labels_in_point_labels(self):
        sweep = SweepConfig(
            name="label",
            base=base(),
            axes=(SweepAxis("quant.saturation_tolerance", (0.5,)),),
        )
        (point,) = expand(sweep)
        assert point.label == "vgg11-micro-smoke[saturation_tolerance=0.5]"
        assert point.overrides == (("saturation_tolerance", 0.5),)

    def test_no_axes_yields_base_point(self):
        (point,) = expand(SweepConfig(name="single", base=base()))
        assert point.config == base()
        assert point.label == "vgg11-micro-smoke"

    def test_colliding_axis_labels_disambiguated(self):
        # model.seed and data.seed must NOT both label "seed".
        sweep = SweepConfig(
            name="two-seeds",
            base=base(),
            mode="zip",
            axes=(
                SweepAxis("model.seed", (0, 1)),
                SweepAxis("data.seed", (2, 3)),
            ),
        )
        points = expand(sweep)
        assert points[0].overrides == (("model.seed", 0), ("data.seed", 2))
        assert points[0].label \
            == "vgg11-micro-smoke[model.seed=0,data.seed=2]"
        assert len({p.label for p in points}) == len(points)

    def test_non_colliding_labels_stay_short(self):
        sweep = SweepConfig(
            name="mixed",
            base=base(),
            axes=(
                SweepAxis("quant.initial_bits", (8,)),
                SweepAxis("model.seed", (0,)),
            ),
        )
        (point,) = expand(sweep)
        assert point.overrides == (("initial_bits", 8), ("seed", 0))


class TestValidation:
    def test_base_xor_presets(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepConfig(name="both", base=base(), presets=("quickstart-vgg11",))
        with pytest.raises(ValueError, match="exactly one"):
            SweepConfig(name="neither")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SweepConfig(name="m", base=base(), mode="outer")

    def test_bad_axis_type(self):
        with pytest.raises(TypeError):
            SweepConfig(name="a", base=base(), axes=({"path": "lr"},))

    def test_duplicate_axis_paths_rejected(self):
        with pytest.raises(ValueError, match="duplicate sweep axes"):
            SweepConfig(
                name="dup",
                base=base(),
                axes=(
                    SweepAxis("quant.initial_bits", (8,)),
                    SweepAxis("quant.initial_bits", (16,)),
                ),
            )

    def test_seed_axis_conflicts_with_seeds_shorthand(self):
        with pytest.raises(ValueError, match="duplicate sweep axes"):
            SweepConfig(
                name="dup-seed",
                base=base(),
                axes=(SweepAxis("seed", (0, 1)),),
                seeds=(2, 3),
            )

    def test_seed_shorthand_overlapping_explicit_seed_axis_rejected(self):
        # `seed` silently clobbers model.seed/data.seed in the merged
        # override, so the combination is an input error.
        with pytest.raises(ValueError, match="already sets"):
            SweepConfig(
                name="overlap",
                base=base(),
                axes=(SweepAxis("model.seed", (0, 1)),),
                seeds=(2, 3),
            )
        with pytest.raises(ValueError, match="already sets"):
            SweepConfig(
                name="overlap2",
                base=base(),
                mode="zip",
                axes=(
                    SweepAxis("seed", (0, 1)),
                    SweepAxis("data.seed", (2, 3)),
                ),
            )


class TestRoundTrip:
    def test_dict_round_trip(self):
        sweep = SweepConfig(
            name="rt",
            base=base(),
            axes=(SweepAxis("quant.initial_bits", (8, 16)),),
            seeds=(0, 1),
            description="round trip",
        )
        clone = SweepConfig.from_dict(sweep.to_dict())
        assert clone == sweep

    def test_json_round_trip(self, tmp_path):
        sweep = SweepConfig(name="rt", presets=("vgg11-micro-smoke",), seeds=(1,))
        path = tmp_path / "sweep.json"
        sweep.to_json(path)
        assert SweepConfig.from_json(path) == sweep

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SweepConfig.from_dict({"name": "x", "presets": ["a"], "bogus": 1})


class TestRegistry:
    def test_sweep_presets_registered(self):
        names = experiments.sweep_names()
        for expected in ("ablation-saturation", "ablation-initial-bits",
                         "table2-grid", "table3-grid", "table2-vgg19-seeds",
                         "smoke-seeds"):
            assert expected in names

    def test_ablation_saturation_matches_design_grid(self):
        sweep = experiments.get_sweep("ablation-saturation")
        points = expand(sweep)
        assert [p.config.quant.saturation_tolerance for p in points] \
            == [0.005, 0.05, 0.5]
        assert all(p.config.model.seed == 5 for p in points)

    def test_table2_vgg19_seeds_is_four_points(self):
        points = expand(experiments.get_sweep("table2-vgg19-seeds"))
        assert len(points) == 4
        assert {p.config.model.seed for p in points} == {0, 1, 2, 3}

    def test_unknown_sweep_is_clean_keyerror(self):
        with pytest.raises(KeyError, match="unknown sweep preset"):
            experiments.get_sweep("nope")

    def test_duplicate_registration_rejected(self):
        sweep = experiments.get_sweep("smoke-seeds")
        with pytest.raises(ValueError, match="already registered"):
            experiments.register_sweep(sweep)
