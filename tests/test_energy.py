"""Analytical energy model: Table I constants, §IV-A formulas, profiling."""

import numpy as np
import pytest

from repro.energy import (
    AnalyticalEnergyModel,
    EnergyConstants,
    LayerProfile,
    conv_mac_ops,
    conv_mem_accesses,
    energy_efficiency,
    fc_mac_ops,
    fc_mem_accesses,
    mac_energy_pj,
    memory_access_energy_pj,
    profile_model,
    trace_geometry,
)
from repro.models import resnet18, vgg19
from repro.quant import LayerQuantSpec, QuantizationPlan


class TestTableIConstants:
    @pytest.mark.parametrize("bits,expected", [(1, 2.5), (4, 10.0), (16, 40.0), (32, 80.0)])
    def test_memory_access_energy(self, bits, expected):
        assert memory_access_energy_pj(bits) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "bits,expected",
        [(32, 3.2), (16, 1.65), (8, 0.875), (4, 0.4875), (2, 0.29375), (1, 0.196875)],
    )
    def test_mac_energy(self, bits, expected):
        """E_MAC|k = (3.1 * k)/32 + 0.1 pJ."""
        assert mac_energy_pj(bits) == pytest.approx(expected)

    def test_constants_are_table_i(self):
        c = EnergyConstants()
        assert c.mem_access_per_bit_pj == 2.5
        assert c.mult32_pj == 3.1
        assert c.add32_pj == 0.1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            mac_energy_pj(0)
        with pytest.raises(ValueError):
            memory_access_energy_pj(-3)


class TestCounts:
    def test_conv_mem_formula(self):
        # N_Mem = N^2*I + p^2*I*O.
        assert conv_mem_accesses(32, 3, 64, 3) == 32 * 32 * 3 + 9 * 3 * 64

    def test_conv_mac_formula(self):
        # N_MAC = M^2*I*p^2*O.
        assert conv_mac_ops(32, 3, 64, 3) == 32 * 32 * 3 * 9 * 64

    def test_fc_formulas(self):
        assert fc_mem_accesses(512, 10) == 512 + 5120
        assert fc_mac_ops(512, 10) == 5120

    def test_validation(self):
        with pytest.raises(ValueError):
            conv_mac_ops(0, 3, 4, 3)
        with pytest.raises(ValueError):
            fc_mac_ops(5, 0)


def make_profile(**overrides):
    base = dict(
        name="conv",
        kind="conv",
        in_channels=3,
        out_channels=8,
        kernel=3,
        input_size=16,
        output_size=16,
        bits=16,
    )
    base.update(overrides)
    return LayerProfile(**base)


class TestLayerProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile(kind="pool")
        with pytest.raises(ValueError):
            make_profile(bits=0)
        with pytest.raises(ValueError):
            make_profile(out_channels=0)

    def test_effective_input_bits_defaults_to_bits(self):
        assert make_profile(bits=4).effective_input_bits == 4
        assert make_profile(bits=4, input_bits=16).effective_input_bits == 16


class TestAnalyticalModel:
    def test_layer_energy_formula(self):
        model = AnalyticalEnergyModel()
        profile = make_profile()
        mem, mac = model.layer_counts(profile)
        expected = mem * memory_access_energy_pj(16) + mac * mac_energy_pj(16)
        assert model.layer_energy_pj(profile) == pytest.approx(expected)

    def test_lower_bits_lower_energy(self):
        model = AnalyticalEnergyModel()
        assert model.layer_energy_pj(make_profile(bits=4)) < model.layer_energy_pj(
            make_profile(bits=16)
        )

    def test_network_breakdown_sums(self):
        model = AnalyticalEnergyModel()
        profiles = [make_profile(name="a"), make_profile(name="b", bits=4)]
        breakdown = model.network_energy(profiles)
        assert breakdown.total_pj == pytest.approx(
            breakdown.mac_pj + breakdown.mem_pj
        )
        assert set(breakdown.per_layer_pj) == {"a", "b"}
        assert breakdown.total_pj == pytest.approx(sum(breakdown.per_layer_pj.values()))

    def test_empty_profiles_raise(self):
        with pytest.raises(ValueError):
            AnalyticalEnergyModel().network_energy([])

    def test_efficiency_identity(self):
        profiles = [make_profile()]
        assert energy_efficiency(profiles, profiles) == pytest.approx(1.0)

    def test_efficiency_improves_with_quantization(self):
        baseline = [make_profile()]
        quantized = [make_profile(bits=4)]
        assert energy_efficiency(baseline, quantized) > 2.0

    def test_mac_reduction_identity_and_order(self):
        model = AnalyticalEnergyModel()
        baseline = [make_profile()]
        assert model.mac_reduction(baseline, baseline) == pytest.approx(1.0)
        assert model.mac_reduction(baseline, [make_profile(bits=2)]) > 1.0


class TestProfileModel:
    def test_vgg19_profile_geometry(self, rng):
        model = vgg19(num_classes=10, width_multiplier=0.125, rng=rng)
        trace_geometry(model, (3, 32, 32))
        profiles = profile_model(model, default_bits=16)
        assert len(profiles) == 17
        assert profiles[0].input_size == 32
        assert profiles[-1].kind == "linear"
        # Spatial sizes halve at each pool stage.
        sizes = [p.input_size for p in profiles if p.kind == "conv"]
        assert sizes[0] == 32 and sizes[-1] == 2

    def test_geometry_required(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        with pytest.raises(RuntimeError):
            profile_model(model)

    def test_plan_bits_used(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        trace_geometry(model, (3, 32, 32))
        names = model.layer_handles().names()
        plan = QuantizationPlan([LayerQuantSpec(n, 3) for n in names])
        profiles = profile_model(model, plan=plan)
        assert all(p.bits == 3 for p in profiles)

    def test_input_bits_follow_producer(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        trace_geometry(model, (3, 32, 32))
        names = model.layer_handles().names()
        bits = [16] + [4] * (len(names) - 2) + [16]
        plan = QuantizationPlan(
            [LayerQuantSpec(n, b) for n, b in zip(names, bits)]
        )
        profiles = profile_model(model, plan=plan)
        assert profiles[1].bits == 4
        assert profiles[1].input_bits == 16  # producer conv1 is 16-bit
        assert profiles[2].input_bits == 4

    def test_resnet_includes_downsample_followers(self, rng):
        model = resnet18(width_multiplier=0.125, rng=rng)
        trace_geometry(model, (3, 32, 32))
        profiles = profile_model(model, default_bits=16)
        downsample = [p for p in profiles if "downsample" in p.name]
        assert len(downsample) == 3
        assert all(p.kernel == 1 for p in downsample)
        without = profile_model(model, default_bits=16, include_followers=False)
        assert len(without) == len(profiles) - 3

    def test_pruning_masks_reduce_effective_channels(self, rng):
        model = vgg19(width_multiplier=0.25, rng=rng)
        trace_geometry(model, (3, 32, 32))
        handle = model.layer_handles().by_name("conv3")
        total = handle.out_channels
        mask = np.zeros(total)
        mask[: total // 2] = 1.0
        handle.set_channel_mask(mask)
        profiles = profile_model(model, default_bits=16)
        conv3 = next(p for p in profiles if p.name == "conv3")
        conv4 = next(p for p in profiles if p.name == "conv4")
        assert conv3.out_channels == total // 2
        assert conv4.in_channels == total // 2

    def test_disabled_layer_skipped(self, rng):
        model = vgg19(width_multiplier=0.125, rng=rng)
        trace_geometry(model, (3, 32, 32))
        model.layer_handles().by_name("conv16").unit.enabled = False
        profiles = profile_model(model, default_bits=16)
        assert all(p.name != "conv16" for p in profiles)
        assert len(profiles) == 16
